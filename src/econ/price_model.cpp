#include "econ/price_model.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace gridtrust::econ {

namespace {

/// Shared storage + signal validation for the concrete models.
class BasePriceModel : public PriceModel {
 public:
  BasePriceModel(std::string name, std::vector<double> base_rates)
      : name_(std::move(name)),
        base_(std::move(base_rates)),
        rates_(base_) {
    GT_REQUIRE(!base_.empty(), "price model needs at least one machine");
    for (const double rate : base_) {
      GT_REQUIRE(rate > 0.0, "base rates must be positive");
    }
  }

  const std::string& name() const override { return name_; }
  std::size_t machines() const override { return base_.size(); }
  double rate(std::size_t m) const override {
    GT_REQUIRE(m < rates_.size(), "machine index out of range");
    return rates_[m];
  }
  double base_rate(std::size_t m) const override {
    GT_REQUIRE(m < base_.size(), "machine index out of range");
    return base_[m];
  }

 protected:
  void check_signals(const RoundSignals& signals) const {
    GT_REQUIRE(signals.utilization.size() == base_.size() &&
                   signals.trust_level.size() == base_.size(),
               "round signals must cover every machine");
  }

  std::string name_;
  std::vector<double> base_;
  std::vector<double> rates_;
};

/// Rates never move.
class FlatPriceModel final : public BasePriceModel {
 public:
  explicit FlatPriceModel(std::vector<double> base_rates)
      : BasePriceModel("flat", std::move(base_rates)) {}

  void update_round(const RoundSignals& signals) override {
    check_signals(signals);
  }
};

/// Multiplicative supply/demand walk: a machine busier than the target
/// utilization raises its rate, an idle one lowers it, clamped to
/// [min_factor, max_factor] x base.
class CommodityPriceModel final : public BasePriceModel {
 public:
  CommodityPriceModel(std::vector<double> base_rates,
                      const EconomyConfig& config)
      : BasePriceModel("commodity", std::move(base_rates)),
        elasticity_(config.commodity_elasticity),
        target_(config.target_utilization),
        min_factor_(config.min_price_factor),
        max_factor_(config.max_price_factor),
        factor_(base_.size(), 1.0) {}

  void update_round(const RoundSignals& signals) override {
    check_signals(signals);
    for (std::size_t m = 0; m < base_.size(); ++m) {
      const double excess = signals.utilization[m] - target_;
      factor_[m] = std::clamp(factor_[m] * (1.0 + elasticity_ * excess),
                              min_factor_, max_factor_);
      rates_[m] = base_[m] * factor_[m];
    }
  }

 private:
  double elasticity_;
  double target_;
  double min_factor_;
  double max_factor_;
  std::vector<double> factor_;
};

/// Trust as a price signal: the rate is base x a linear premium in the
/// domain's believed trust level, recomputed from the current table each
/// round (no compounding — a recovered domain reprices immediately).
/// Level 3.5 (the scale midpoint) prices at base; level 6 earns the full
/// premium, level 1 takes the full discount.
class TrustWeightedPriceModel final : public BasePriceModel {
 public:
  TrustWeightedPriceModel(std::vector<double> base_rates,
                          const EconomyConfig& config)
      : BasePriceModel("trust", std::move(base_rates)),
        premium_(config.trust_premium_pct / 100.0) {}

  void update_round(const RoundSignals& signals) override {
    check_signals(signals);
    for (std::size_t m = 0; m < base_.size(); ++m) {
      const double level = std::clamp(signals.trust_level[m], 1.0, 6.0);
      rates_[m] = base_[m] * (1.0 + premium_ * (level - 3.5) / 2.5);
    }
  }

 private:
  double premium_;
};

}  // namespace

std::vector<double> PriceModel::rates() const {
  std::vector<double> out;
  out.reserve(machines());
  for (std::size_t m = 0; m < machines(); ++m) out.push_back(rate(m));
  return out;
}

double PriceModel::price_index() const {
  double rate_sum = 0.0;
  double base_sum = 0.0;
  for (std::size_t m = 0; m < machines(); ++m) {
    rate_sum += rate(m);
    base_sum += base_rate(m);
  }
  return base_sum > 0.0 ? rate_sum / base_sum : 0.0;
}

std::vector<double> draw_base_rates(const EconomyConfig& config,
                                    std::size_t machines, Rng& rng) {
  GT_REQUIRE(machines >= 1, "need at least one machine");
  std::vector<double> rates;
  rates.reserve(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    rates.push_back(config.base_rate *
                    rng.uniform(1.0 - config.rate_spread,
                                1.0 + config.rate_spread));
  }
  return rates;
}

std::unique_ptr<PriceModel> make_price_model(const EconomyConfig& config,
                                             std::vector<double> base_rates) {
  switch (pricing_from_string(config.pricing)) {
    case PricingKind::kFlat:
      return std::make_unique<FlatPriceModel>(std::move(base_rates));
    case PricingKind::kCommodity:
      return std::make_unique<CommodityPriceModel>(std::move(base_rates),
                                                   config);
    case PricingKind::kTrustWeighted:
      return std::make_unique<TrustWeightedPriceModel>(std::move(base_rates),
                                                       config);
  }
  GT_REQUIRE(false, "unreachable pricing kind");
  return nullptr;
}

}  // namespace gridtrust::econ
