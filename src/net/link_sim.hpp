// Shared-link transfer simulation: concurrent rcp/scp sessions.
//
// The single-transfer model (transfer_model.hpp) reproduces Tables 2-3; this
// module extends it to data-staging *workloads*: many files, possibly in
// parallel, over one link between two hosts.  It is a fluid-flow simulation:
// between events (session arrival, handshake completion, transfer
// completion) every active flow progresses at a constant rate determined by
// fair sharing of the two contended resources —
//
//   * the link payload capacity, split equally over flows on the wire, and
//   * the sender CPU, whose cipher+protocol seconds are split equally over
//     the secure flows (rcp flows only pay NIC processing),
//
// each flow additionally capped by the per-flow disk rate.  Events are
// processed in time order by advancing the fluid state analytically, so the
// simulation is exact for this model regardless of step sizes.
//
// The paper's conclusion calls for "eliminating redundant application of
// secure operations"; bench_link_sharing uses this simulator to quantify the
// two classic remedies (batching many files into one secure session, and
// not parallelizing cipher-bound transfers).
#pragma once

#include <cstddef>
#include <vector>

#include "net/transfer_model.hpp"

namespace gridtrust::net {

/// One requested transfer session.
struct SessionSpec {
  double start_time = 0.0;  ///< when the session is initiated
  Megabytes size{1.0};      ///< payload volume
  Protocol protocol = Protocol::kScp;
};

/// Outcome of one session.
struct SessionOutcome {
  std::size_t session = 0;
  double start = 0.0;           ///< session initiation
  double streaming_from = 0.0;  ///< handshake completed, payload flowing
  double finish = 0.0;          ///< last byte delivered

  double duration() const { return finish - start; }
};

/// Aggregate view of a staging workload.
struct StagingReport {
  std::vector<SessionOutcome> sessions;
  double makespan = 0.0;        ///< max finish - min start
  double total_payload_mb = 0.0;
  double aggregate_rate_mb_s = 0.0;  ///< payload / makespan
};

/// Fluid-flow simulator for one link between two identical hosts.
class SharedLinkSimulator {
 public:
  SharedLinkSimulator(HostProfile host, LinkProfile link);

  const HostProfile& host() const { return host_; }
  const LinkProfile& link() const { return link_; }

  /// Simulates all sessions; specs may start at arbitrary times.
  StagingReport simulate(const std::vector<SessionSpec>& specs) const;

  /// Convenience strategies for staging `files` files of `file_mb` each:
  /// every strategy moves the same payload.
  ///
  /// - "parallel": all sessions start at t=0 and share the link/CPU.
  /// - "sequential": session i starts when session i-1 finishes.
  /// - "batched": one session carries the whole payload (tar-over-one-ssh;
  ///   a single handshake, no redundant key exchanges).
  StagingReport stage_parallel(std::size_t files, Megabytes file_mb,
                               Protocol protocol) const;
  StagingReport stage_sequential(std::size_t files, Megabytes file_mb,
                                 Protocol protocol) const;
  StagingReport stage_batched(std::size_t files, Megabytes file_mb,
                              Protocol protocol) const;

 private:
  HostProfile host_;
  LinkProfile link_;
};

}  // namespace gridtrust::net
