#include "net/report.hpp"

namespace gridtrust::net {

std::vector<double> paper_file_sizes_mb() { return {1, 10, 100, 500, 1000}; }

TextTable transfer_table(const TransferModel& model, const std::string& title,
                         const std::vector<double>& sizes_mb) {
  TextTable table({"File size/MB", "Using rcp/(sec)", "Using scp/(sec)",
                   "Overhead"});
  table.set_title(title);
  for (const double size : sizes_mb) {
    const Megabytes mb(size);
    table.add_row({format_grouped(size, 0),
                   format_grouped(model.transfer_time_s(mb, Protocol::kRcp), 2),
                   format_grouped(model.transfer_time_s(mb, Protocol::kScp), 2),
                   format_percent(model.security_overhead_pct(mb))});
  }
  return table;
}

}  // namespace gridtrust::net
