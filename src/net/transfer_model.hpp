// Secure vs regular file-transfer simulation (Tables 2-3).
//
// The paper measured rcp vs scp on real 100/1000 Mbps LANs between
// Pentium III 866 MHz hosts.  We reproduce the experiment with a pipelined
// transfer model: a file moves in fixed-size chunks through three stages —
// disk, CPU (protocol processing, and for scp the cipher+MAC), and wire —
// each stage with its own throughput.  Steady-state throughput is set by the
// slowest stage; a per-session handshake (rsh connect for rcp, SSH key
// exchange for scp) adds a fixed latency.  The default profiles are
// calibrated to the paper's hardware: ~22 MB/s disk, ~7.3 MB/s 3DES+HMAC
// cipher throughput, and NIC processing costs of a 2002-era 100 Mbps /
// gigabit adapter.
//
// The point the experiment makes survives the substitution: on the gigabit
// link the cipher caps scp far below the wire rate, so securing the
// transfer negates the benefit of the faster network.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace gridtrust::net {

/// End-host capabilities (both ends assumed identical, as in the paper).
struct HostProfile {
  /// Sequential disk throughput (source read / sink write).
  MegabytesPerSecond disk{22.0};
  /// Symmetric cipher + MAC throughput (3DES+HMAC-SHA1 class on a PIII-866).
  MegabytesPerSecond cipher{7.3};
  /// CPU cost of NIC/protocol processing, seconds per megabyte moved.
  double nic_cpu_s_per_mb = 0.002;
  /// Session setup of an unauthenticated rsh/rcp connection (seconds).
  double rcp_handshake_s = 0.10;
  /// SSH handshake: TCP + key exchange + asymmetric crypto (seconds).
  double scp_handshake_s = 0.45;
};

/// Link capabilities.
struct LinkProfile {
  MegabitsPerSecond bandwidth{100.0};
  /// Fraction of raw bandwidth available to payload after TCP/IP framing,
  /// ACK traffic and half-duplex losses.
  double payload_efficiency = 0.83;
  /// One-way latency in seconds (adds to handshakes, negligible in bulk).
  double latency_s = 0.0002;
};

/// The paper's two testbeds.
HostProfile piii_866_host(const LinkProfile& link);
LinkProfile fast_ethernet_link();   ///< 100 Mbps (Table 2)
LinkProfile gigabit_ethernet_link();///< 1000 Mbps (Table 3)

/// Cipher+MAC throughput of the SSH ciphers a 2002 deployment could pick
/// with `scp -c` on a PIII-866-class host.  The paper's numbers match the
/// protocol-2 default, 3des-cbc.
///   "3des"     ~7.3 MB/s (the default; used for Tables 2-3)
///   "blowfish" ~16 MB/s
///   "arcfour"  ~27 MB/s
/// Throws PreconditionError for unknown names.
MegabytesPerSecond cipher_throughput(const std::string& cipher_name);

/// Names accepted by cipher_throughput.
std::vector<std::string> known_ciphers();

/// Transfer protocol.
enum class Protocol {
  kRcp,  ///< remote copy: no encryption
  kScp,  ///< secure copy: cipher+MAC stage on the CPU
};

std::string to_string(Protocol protocol);

/// One simulated file transfer.
struct TransferResult {
  double duration_s = 0.0;       ///< handshake + pipelined body
  double handshake_s = 0.0;      ///< session setup portion
  double steady_rate_mb_s = 0.0; ///< bottleneck throughput of the pipeline
  std::size_t chunks = 0;        ///< pipeline chunks simulated
};

/// Simulates transfers over one link between two identical hosts.
class TransferModel {
 public:
  TransferModel(HostProfile host, LinkProfile link);

  const HostProfile& host() const { return host_; }
  const LinkProfile& link() const { return link_; }

  /// Simulates a single file transfer of `size` using `protocol`.
  /// `chunk_mb` is the pipeline granularity (default 1 MB).
  TransferResult transfer(Megabytes size, Protocol protocol,
                          double chunk_mb = 1.0) const;

  /// Convenience: transfer duration in seconds.
  double transfer_time_s(Megabytes size, Protocol protocol) const;

  /// The paper's overhead metric: (scp - rcp) / scp * 100 for one size.
  double security_overhead_pct(Megabytes size) const;

 private:
  /// Per-chunk time spent in each pipeline stage, seconds per chunk.
  struct StageTimes {
    double disk;
    double cpu;
    double wire;
  };
  StageTimes stage_times(Protocol protocol, double chunk_mb) const;

  HostProfile host_;
  LinkProfile link_;
};

}  // namespace gridtrust::net
