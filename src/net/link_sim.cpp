#include "net/link_sim.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace gridtrust::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

struct Flow {
  std::size_t id = 0;
  Protocol protocol = Protocol::kScp;
  double arrival = 0.0;
  double handshake_left = 0.0;  // seconds until streaming starts
  double remaining_mb = 0.0;
  bool started = false;    // session initiated
  bool streaming = false;  // handshake done, payload flowing
  bool finished = false;
  SessionOutcome outcome;
};

}  // namespace

SharedLinkSimulator::SharedLinkSimulator(HostProfile host, LinkProfile link)
    : host_(host), link_(link) {
  // Reuse the single-transfer model's validation.
  (void)TransferModel(host, link);
}

StagingReport SharedLinkSimulator::simulate(
    const std::vector<SessionSpec>& specs) const {
  GT_REQUIRE(!specs.empty(), "need at least one session");
  std::vector<Flow> flows(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    GT_REQUIRE(specs[i].size.value() > 0.0, "session payload must be positive");
    GT_REQUIRE(specs[i].start_time >= 0.0, "start time must be non-negative");
    Flow& f = flows[i];
    f.id = i;
    f.protocol = specs[i].protocol;
    f.arrival = specs[i].start_time;
    f.handshake_left = (specs[i].protocol == Protocol::kRcp
                            ? host_.rcp_handshake_s
                            : host_.scp_handshake_s) +
                       2.0 * link_.latency_s;
    f.remaining_mb = specs[i].size.value();
    f.outcome.session = i;
    f.outcome.start = f.arrival;
  }

  const double link_capacity =
      to_megabytes_per_second(link_.bandwidth).value() *
      link_.payload_efficiency;
  // CPU seconds per streamed MB, by protocol.
  const double cpu_per_mb_scp = host_.nic_cpu_s_per_mb + 1.0 / host_.cipher.value();
  const double cpu_per_mb_rcp = host_.nic_cpu_s_per_mb;

  double now = 0.0;
  std::size_t finished = 0;
  while (finished < flows.size()) {
    // Classify flows at the current instant.
    std::vector<Flow*> streaming;
    double next_event = kInf;
    for (Flow& f : flows) {
      if (f.finished) continue;
      if (!f.started) {
        next_event = std::min(next_event, f.arrival);
        continue;
      }
      if (!f.streaming) {
        next_event = std::min(next_event, now + f.handshake_left);
        continue;
      }
      streaming.push_back(&f);
    }

    // Per-flow rates under equal sharing of link and CPU.
    std::vector<double> rates(streaming.size(), 0.0);
    if (!streaming.empty()) {
      const double n = static_cast<double>(streaming.size());
      const double link_share = link_capacity / n;
      const double disk_share = host_.disk.value() / n;
      // CPU: one sender core splits its seconds evenly over active flows.
      // A flow at rate r consumes r * cpu_per_mb CPU-seconds per second and
      // may use at most 1/n of the core.  The disk is shared the same way
      // (seek degradation under concurrency is not modelled).
      for (std::size_t i = 0; i < streaming.size(); ++i) {
        const double cpu_per_mb = streaming[i]->protocol == Protocol::kScp
                                      ? cpu_per_mb_scp
                                      : cpu_per_mb_rcp;
        const double cpu_rate_cap =
            cpu_per_mb > 0.0 ? (1.0 / n) / cpu_per_mb : kInf;
        rates[i] = std::min({disk_share, link_share, cpu_rate_cap});
        GT_ASSERT(rates[i] > 0.0);
        const double completion = now + streaming[i]->remaining_mb / rates[i];
        next_event = std::min(next_event, completion);
      }
    }

    GT_ASSERT(next_event < kInf);
    const double dt = std::max(0.0, next_event - now);

    // Advance the fluid state to the event instant.
    for (std::size_t i = 0; i < streaming.size(); ++i) {
      streaming[i]->remaining_mb -= rates[i] * dt;
    }
    for (Flow& f : flows) {
      if (f.finished || !f.started || f.streaming) continue;
      f.handshake_left -= dt;
    }
    now = next_event;

    // Fire everything that lands on this instant.
    for (Flow& f : flows) {
      if (f.finished) continue;
      if (!f.started && f.arrival <= now + kEps) {
        f.started = true;
      }
      if (f.started && !f.streaming && f.handshake_left <= kEps) {
        f.handshake_left = 0.0;
        f.streaming = true;
        f.outcome.streaming_from = now;
      }
      if (f.streaming && !f.finished && f.remaining_mb <= kEps) {
        f.remaining_mb = 0.0;
        f.finished = true;
        f.outcome.finish = now;
        ++finished;
      }
    }
  }

  StagingReport report;
  report.sessions.reserve(flows.size());
  double first_start = kInf;
  double last_finish = 0.0;
  for (Flow& f : flows) {
    first_start = std::min(first_start, f.outcome.start);
    last_finish = std::max(last_finish, f.outcome.finish);
    report.total_payload_mb += specs[f.id].size.value();
    report.sessions.push_back(f.outcome);
  }
  report.makespan = last_finish - first_start;
  GT_ASSERT(report.makespan > 0.0);
  report.aggregate_rate_mb_s = report.total_payload_mb / report.makespan;
  return report;
}

StagingReport SharedLinkSimulator::stage_parallel(std::size_t files,
                                                  Megabytes file_mb,
                                                  Protocol protocol) const {
  GT_REQUIRE(files >= 1, "need at least one file");
  std::vector<SessionSpec> specs(files, SessionSpec{0.0, file_mb, protocol});
  return simulate(specs);
}

StagingReport SharedLinkSimulator::stage_sequential(std::size_t files,
                                                    Megabytes file_mb,
                                                    Protocol protocol) const {
  GT_REQUIRE(files >= 1, "need at least one file");
  // Chain starts: run one session to learn its duration, then offset.
  // All sessions are identical, so one probe suffices.
  const StagingReport probe =
      simulate({SessionSpec{0.0, file_mb, protocol}});
  const double each = probe.sessions[0].duration();
  std::vector<SessionSpec> specs;
  specs.reserve(files);
  for (std::size_t i = 0; i < files; ++i) {
    specs.push_back(SessionSpec{static_cast<double>(i) * each, file_mb,
                                protocol});
  }
  return simulate(specs);
}

StagingReport SharedLinkSimulator::stage_batched(std::size_t files,
                                                 Megabytes file_mb,
                                                 Protocol protocol) const {
  GT_REQUIRE(files >= 1, "need at least one file");
  return simulate({SessionSpec{
      0.0, Megabytes(file_mb.value() * static_cast<double>(files)),
      protocol}});
}

}  // namespace gridtrust::net
