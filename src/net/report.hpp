// Rendering of the secure-vs-regular transmission tables (Tables 2-3).
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "net/transfer_model.hpp"

namespace gridtrust::net {

/// The file sizes the paper reports (MB).
std::vector<double> paper_file_sizes_mb();

/// Renders one paper-style table: per file size, the rcp time, the scp
/// time, and the security overhead (scp-rcp)/scp.
TextTable transfer_table(const TransferModel& model, const std::string& title,
                         const std::vector<double>& sizes_mb);

}  // namespace gridtrust::net
