#include "net/transfer_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridtrust::net {

HostProfile piii_866_host(const LinkProfile& link) {
  HostProfile host;
  // A 2002-era 100 Mbps NIC without checksum offload costs the CPU notably
  // more per byte than a gigabit adapter with DMA and interrupt coalescing
  // relative to its wire speed; calibrated against the paper's bulk rates.
  host.nic_cpu_s_per_mb = link.bandwidth.value() <= 100.0 ? 0.010 : 0.002;
  return host;
}

LinkProfile fast_ethernet_link() {
  LinkProfile link;
  link.bandwidth = MegabitsPerSecond(100.0);
  link.payload_efficiency = 0.83;
  return link;
}

LinkProfile gigabit_ethernet_link() {
  LinkProfile link;
  link.bandwidth = MegabitsPerSecond(1000.0);
  link.payload_efficiency = 0.83;
  return link;
}

MegabytesPerSecond cipher_throughput(const std::string& cipher_name) {
  if (cipher_name == "3des") return MegabytesPerSecond(7.3);
  if (cipher_name == "blowfish") return MegabytesPerSecond(16.0);
  if (cipher_name == "arcfour") return MegabytesPerSecond(27.0);
  GT_REQUIRE(false, "unknown cipher: " + cipher_name);
  return MegabytesPerSecond(0.0);
}

std::vector<std::string> known_ciphers() {
  return {"3des", "blowfish", "arcfour"};
}

std::string to_string(Protocol protocol) {
  return protocol == Protocol::kRcp ? "rcp" : "scp";
}

TransferModel::TransferModel(HostProfile host, LinkProfile link)
    : host_(host), link_(link) {
  GT_REQUIRE(host.disk.value() > 0.0, "disk rate must be positive");
  GT_REQUIRE(host.cipher.value() > 0.0, "cipher rate must be positive");
  GT_REQUIRE(host.nic_cpu_s_per_mb >= 0.0, "NIC cost must be non-negative");
  GT_REQUIRE(link.bandwidth.value() > 0.0, "bandwidth must be positive");
  GT_REQUIRE(link.payload_efficiency > 0.0 && link.payload_efficiency <= 1.0,
             "payload efficiency must be in (0, 1]");
  GT_REQUIRE(link.latency_s >= 0.0, "latency must be non-negative");
}

TransferModel::StageTimes TransferModel::stage_times(Protocol protocol,
                                                     double chunk_mb) const {
  const MegabytesPerSecond payload =
      to_megabytes_per_second(link_.bandwidth) * link_.payload_efficiency;
  StageTimes t{};
  t.disk = chunk_mb / host_.disk.value();
  // One CPU runs protocol processing and (for scp) the cipher serially.
  double cpu_per_mb = host_.nic_cpu_s_per_mb;
  if (protocol == Protocol::kScp) cpu_per_mb += 1.0 / host_.cipher.value();
  t.cpu = chunk_mb * cpu_per_mb;
  t.wire = chunk_mb / payload.value();
  return t;
}

TransferResult TransferModel::transfer(Megabytes size, Protocol protocol,
                                       double chunk_mb) const {
  GT_REQUIRE(size.value() > 0.0, "transfer size must be positive");
  GT_REQUIRE(chunk_mb > 0.0, "chunk size must be positive");

  const StageTimes t = stage_times(protocol, chunk_mb);
  const auto chunks = static_cast<std::size_t>(
      std::ceil(size.value() / chunk_mb));
  // Last chunk may be partial.
  const double last_fraction =
      size.value() / chunk_mb - static_cast<double>(chunks - 1);

  // Three-stage pipeline recurrence: chunk i leaves stage s when both the
  // chunk has cleared stage s-1 and the stage has finished chunk i-1.
  double disk_free = 0.0;
  double cpu_free = 0.0;
  double wire_free = 0.0;
  for (std::size_t i = 0; i < chunks; ++i) {
    const double scale = (i + 1 == chunks) ? last_fraction : 1.0;
    disk_free = disk_free + t.disk * scale;
    cpu_free = std::max(cpu_free, disk_free) + t.cpu * scale;
    wire_free = std::max(wire_free, cpu_free) + t.wire * scale;
  }

  TransferResult out;
  out.chunks = chunks;
  out.handshake_s = (protocol == Protocol::kRcp ? host_.rcp_handshake_s
                                                : host_.scp_handshake_s) +
                    2.0 * link_.latency_s;
  out.duration_s = out.handshake_s + wire_free;
  out.steady_rate_mb_s = 1.0 / std::max({t.disk, t.cpu, t.wire}) * chunk_mb;
  return out;
}

double TransferModel::transfer_time_s(Megabytes size,
                                      Protocol protocol) const {
  return transfer(size, protocol).duration_s;
}

double TransferModel::security_overhead_pct(Megabytes size) const {
  const double rcp = transfer_time_s(size, Protocol::kRcp);
  const double scp = transfer_time_s(size, Protocol::kScp);
  GT_ASSERT(scp > 0.0);
  return (scp - rcp) / scp * 100.0;
}

}  // namespace gridtrust::net
