// Heterogeneous EEC matrix generation (§5.3).
//
// The paper characterizes ECC matrices by task heterogeneity (variation
// along columns), machine heterogeneity (variation along rows), and
// consistency (whether machine speed ordering is task-independent).  We use
// the classic range-based generation of Maheswaran et al. [10]:
//
//   eec(r, m) = tau_r * u(r, m),  tau_r ~ U[1, phi_task),
//                                 u(r, m) ~ U[1, phi_machine)
//
// A consistent matrix sorts each row so machine 0 is fastest for every task;
// a semi-consistent matrix sorts only the even-indexed machines.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "sched/matrix.hpp"

namespace gridtrust::workload {

/// Structural relationship between rows of the EEC matrix.
enum class Consistency {
  kConsistent,      ///< machines ordered identically for all tasks
  kInconsistent,    ///< no ordering relationship
  kSemiConsistent,  ///< even-indexed machines consistent, rest inconsistent
};

/// Degree of variation.
enum class Heterogeneity { kLow, kHigh };

/// Generation parameters.  Ranges follow the conventions of [10]/Braun et
/// al.: low task heterogeneity spans [1, 100), high [1, 3000); low machine
/// heterogeneity spans [1, 10), high [1, 1000).
struct HeterogeneityParams {
  Consistency consistency = Consistency::kInconsistent;
  Heterogeneity task = Heterogeneity::kLow;
  Heterogeneity machine = Heterogeneity::kLow;
  double low_task_range = 100.0;
  double high_task_range = 3000.0;
  double low_machine_range = 10.0;
  double high_machine_range = 1000.0;

  double task_range() const {
    return task == Heterogeneity::kLow ? low_task_range : high_task_range;
  }
  double machine_range() const {
    return machine == Heterogeneity::kLow ? low_machine_range
                                          : high_machine_range;
  }
};

/// The paper's two workload classes.
HeterogeneityParams consistent_lolo();
HeterogeneityParams inconsistent_lolo();

/// Short label such as "consistent LoLo" for experiment tables.
std::string to_string(const HeterogeneityParams& params);

/// Generates a tasks x machines EEC matrix.
sched::CostMatrix generate_eec(std::size_t tasks, std::size_t machines,
                               const HeterogeneityParams& params, Rng& rng);

/// Measured heterogeneity of a matrix (coefficient-of-variation summary),
/// used by property tests to confirm generated classes differ as intended.
struct MeasuredHeterogeneity {
  double task_cv = 0.0;     ///< mean CV along columns
  double machine_cv = 0.0;  ///< mean CV along rows
};
MeasuredHeterogeneity measure_heterogeneity(const sched::CostMatrix& eec);

/// Fraction of row pairs whose machine ordering agrees (1.0 for a fully
/// consistent matrix); sampled exhaustively over machine pairs.
double consistency_index(const sched::CostMatrix& eec);

}  // namespace gridtrust::workload
