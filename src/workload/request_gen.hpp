// Randomized request workloads (§5.3).
//
// Each request draws: an originating client domain, 1..4 distinct ToAs, a
// client-side RTL and a resource-side RTL from [A, F], and a Poisson arrival
// time.  The trust-level table entries (OTLs) are drawn from [A, E].
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "grid/grid_system.hpp"
#include "grid/request.hpp"
#include "sched/schedule.hpp"
#include "trust/trust_table.hpp"

namespace gridtrust::workload {

/// Parameters of the §5.3 request generator.
struct RequestGenParams {
  /// ToAs per request ~ U[min_activities, max_activities].
  std::size_t min_activities = 1;
  std::size_t max_activities = 4;
  /// RTLs ~ U[min_rtl, max_rtl] on the numeric level scale (A=1 .. F=6).
  int min_rtl = 1;
  int max_rtl = 6;
  /// Poisson arrival rate (requests/second); <= 0 means all requests arrive
  /// at time zero (pure batch instance).
  double arrival_rate = 0.0;
};

/// Generates `count` requests against the grid's client domains and
/// activity catalog.
std::vector<grid::Request> generate_requests(const grid::GridSystem& grid,
                                             std::size_t count,
                                             const RequestGenParams& params,
                                             Rng& rng);

/// How the random trust-level table correlates across activities.
enum class TableCorrelation {
  /// One level ~ U[A, E] per (CD, RD) pair, shared by all activities: trust
  /// between two domains is chiefly a pair property.  This makes a request's
  /// OTL itself uniform on [A, E] — matching §5.3's "OTL values were
  /// randomly generated from [1, 5]" — and is the default for the table
  /// reproductions (see DESIGN.md interpretation notes).
  kPairLevel,
  /// Independent level ~ U[A, E] per (CD, RD, ToA) entry.  A request's OTL
  /// (the min over its ToAs) then skews low; kept for ablations.
  kIndependentPerActivity,
};

/// Builds the randomized trust-level table of the simulations.
trust::TrustLevelTable random_trust_table(
    const grid::GridSystem& grid, Rng& rng,
    TableCorrelation correlation = TableCorrelation::kPairLevel);

/// Draws per-request completion deadlines for QoS studies (the paper cites
/// QoS-integrated RMS work [7, 11] as the sibling concern to security):
/// deadline_r = arrival_r + slack_r * min_m EEC(r, m), slack_r ~
/// U[min_slack, max_slack].  The minimum EEC anchors the deadline to what a
/// dedicated best machine could do; slack covers queueing and security
/// overhead.  Requires min_slack >= 1 (nothing can beat its best EEC).
std::vector<double> draw_deadlines(const std::vector<grid::Request>& requests,
                                   const sched::CostMatrix& eec,
                                   double min_slack, double max_slack,
                                   Rng& rng);

/// Fraction of requests completing after their deadline (sizes must match;
/// every request must be assigned).
double deadline_miss_fraction(const sched::Schedule& schedule,
                              const std::vector<double>& deadlines);

/// Groups requests into the meta-requests a batch-mode RMS with the given
/// formation interval would see: batch k holds the requests with arrival in
/// ((k) * interval ... (k+1) * interval], formed at (k+1) * interval; empty
/// intervals produce no meta-request.  Requests must be sorted by arrival.
std::vector<grid::MetaRequest> form_meta_requests(
    const std::vector<grid::Request>& requests, double interval);

}  // namespace gridtrust::workload
