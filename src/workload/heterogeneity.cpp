#include "workload/heterogeneity.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace gridtrust::workload {

HeterogeneityParams consistent_lolo() {
  HeterogeneityParams p;
  p.consistency = Consistency::kConsistent;
  p.task = Heterogeneity::kLow;
  p.machine = Heterogeneity::kLow;
  return p;
}

HeterogeneityParams inconsistent_lolo() {
  HeterogeneityParams p;
  p.consistency = Consistency::kInconsistent;
  p.task = Heterogeneity::kLow;
  p.machine = Heterogeneity::kLow;
  return p;
}

std::string to_string(const HeterogeneityParams& params) {
  std::string s;
  switch (params.consistency) {
    case Consistency::kConsistent:
      s = "consistent ";
      break;
    case Consistency::kInconsistent:
      s = "inconsistent ";
      break;
    case Consistency::kSemiConsistent:
      s = "semi-consistent ";
      break;
  }
  s += params.task == Heterogeneity::kLow ? "Lo" : "Hi";
  s += params.machine == Heterogeneity::kLow ? "Lo" : "Hi";
  return s;
}

sched::CostMatrix generate_eec(std::size_t tasks, std::size_t machines,
                               const HeterogeneityParams& params, Rng& rng) {
  GT_REQUIRE(tasks > 0 && machines > 0, "need at least one task and machine");
  GT_REQUIRE(params.task_range() > 1.0 && params.machine_range() > 1.0,
             "heterogeneity ranges must exceed 1");
  sched::CostMatrix eec(tasks, machines);
  std::vector<double> row(machines);
  for (std::size_t r = 0; r < tasks; ++r) {
    const double tau = rng.uniform(1.0, params.task_range());
    for (std::size_t m = 0; m < machines; ++m) {
      row[m] = tau * rng.uniform(1.0, params.machine_range());
    }
    switch (params.consistency) {
      case Consistency::kConsistent:
        std::sort(row.begin(), row.end());
        break;
      case Consistency::kSemiConsistent: {
        // Sort the values sitting at even machine indices among themselves.
        std::vector<double> evens;
        for (std::size_t m = 0; m < machines; m += 2) evens.push_back(row[m]);
        std::sort(evens.begin(), evens.end());
        for (std::size_t i = 0, m = 0; m < machines; m += 2, ++i) {
          row[m] = evens[i];
        }
        break;
      }
      case Consistency::kInconsistent:
        break;
    }
    for (std::size_t m = 0; m < machines; ++m) eec.at(r, m) = row[m];
  }
  return eec;
}

namespace {

double coefficient_of_variation(const RunningStats& s) {
  return s.mean() > 0.0 ? s.stddev() / s.mean() : 0.0;
}

}  // namespace

MeasuredHeterogeneity measure_heterogeneity(const sched::CostMatrix& eec) {
  MeasuredHeterogeneity out;
  RunningStats row_cv;
  for (std::size_t r = 0; r < eec.rows(); ++r) {
    RunningStats s;
    for (std::size_t m = 0; m < eec.cols(); ++m) s.add(eec.get(r, m));
    row_cv.add(coefficient_of_variation(s));
  }
  RunningStats col_cv;
  for (std::size_t m = 0; m < eec.cols(); ++m) {
    RunningStats s;
    for (std::size_t r = 0; r < eec.rows(); ++r) s.add(eec.get(r, m));
    col_cv.add(coefficient_of_variation(s));
  }
  out.machine_cv = row_cv.mean();
  out.task_cv = col_cv.mean();
  return out;
}

double consistency_index(const sched::CostMatrix& eec) {
  if (eec.cols() < 2 || eec.rows() < 2) return 1.0;
  std::size_t agree = 0;
  std::size_t total = 0;
  for (std::size_t a = 0; a < eec.cols(); ++a) {
    for (std::size_t b = a + 1; b < eec.cols(); ++b) {
      // Does machine a beat machine b for every task, or vice versa?
      std::size_t a_wins = 0;
      for (std::size_t r = 0; r < eec.rows(); ++r) {
        if (eec.get(r, a) <= eec.get(r, b)) ++a_wins;
      }
      if (a_wins == eec.rows() || a_wins == 0) ++agree;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace gridtrust::workload
