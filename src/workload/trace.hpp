// Workload traces: save and replay complete scheduling instances.
//
// A trace captures everything that defines one §5.3 instance — the request
// stream (domains, ToAs, RTLs, arrivals) and the EEC matrix — so an
// experiment can be re-run bit-identically elsewhere, shared in a bug
// report, or scheduled under a different policy without re-drawing the
// randomness.  The trust-level table serializes separately
// (trust/serialization.hpp); a full experiment is (trace, table, policy).
//
// Format (line oriented, versioned, '#' comments allowed):
//
//   gridtrust-trace v1
//   counts <requests> <machines>
//   req <id> <client> <cd> <client_rtl> <resource_rtl> <arrival> <acts,...>
//   eec <request> <cost for machine 0> <machine 1> ...
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "grid/request.hpp"
#include "sched/matrix.hpp"

namespace gridtrust::workload {

/// One replayable instance.
struct Trace {
  std::vector<grid::Request> requests;
  sched::CostMatrix eec;
};

/// Writes a trace.  `eec` must have one row per request.
void save_trace(const std::vector<grid::Request>& requests,
                const sched::CostMatrix& eec, std::ostream& os);

/// Reads a trace; throws PreconditionError on malformed input.
Trace load_trace(std::istream& is);

/// String round-trip helpers.
std::string trace_to_string(const std::vector<grid::Request>& requests,
                            const sched::CostMatrix& eec);
Trace trace_from_string(const std::string& text);

}  // namespace gridtrust::workload
