#include "workload/request_gen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridtrust::workload {

std::vector<grid::Request> generate_requests(const grid::GridSystem& grid,
                                             std::size_t count,
                                             const RequestGenParams& params,
                                             Rng& rng) {
  GT_REQUIRE(count > 0, "need at least one request");
  GT_REQUIRE(params.min_activities >= 1 &&
                 params.min_activities <= params.max_activities,
             "invalid activity-count range");
  GT_REQUIRE(params.max_activities <= grid.activities().size(),
             "requests cannot need more ToAs than the catalog provides");
  GT_REQUIRE(trust::is_valid_level(params.min_rtl) &&
                 trust::is_valid_level(params.max_rtl) &&
                 params.min_rtl <= params.max_rtl,
             "invalid RTL range");

  std::vector<grid::Request> requests;
  requests.reserve(count);
  double arrival = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    grid::Request req;
    req.id = i;
    if (grid.clients().empty()) {
      req.client_domain = rng.index(grid.client_domains().size());
    } else {
      // Draw an actual client; it inherits its domain's trust attributes.
      req.client = rng.index(grid.clients().size());
      req.client_domain = grid.client(req.client).client_domain;
    }
    const auto n_acts = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(params.min_activities),
                        static_cast<std::int64_t>(params.max_activities)));
    const std::vector<std::size_t> picks =
        rng.sample_indices(grid.activities().size(), n_acts);
    req.activities.assign(picks.begin(), picks.end());
    std::sort(req.activities.begin(), req.activities.end());
    req.client_rtl = trust::level_from_numeric(
        static_cast<int>(rng.uniform_int(params.min_rtl, params.max_rtl)));
    req.resource_rtl = trust::level_from_numeric(
        static_cast<int>(rng.uniform_int(params.min_rtl, params.max_rtl)));
    if (params.arrival_rate > 0.0) {
      arrival += rng.exponential(1.0 / params.arrival_rate);
    }
    req.arrival_time = arrival;
    requests.push_back(std::move(req));
  }
  return requests;
}

trust::TrustLevelTable random_trust_table(const grid::GridSystem& grid,
                                          Rng& rng,
                                          TableCorrelation correlation) {
  trust::TrustLevelTable table(grid.client_domains().size(),
                               grid.resource_domains().size(),
                               grid.activities().size());
  switch (correlation) {
    case TableCorrelation::kIndependentPerActivity:
      table.randomize(rng);
      break;
    case TableCorrelation::kPairLevel:
      for (std::size_t cd = 0; cd < table.client_domains(); ++cd) {
        for (std::size_t rd = 0; rd < table.resource_domains(); ++rd) {
          const auto level = trust::level_from_numeric(static_cast<int>(
              rng.uniform_int(trust::to_numeric(trust::kMinTrustLevel),
                              trust::to_numeric(trust::kMaxOfferedLevel))));
          for (std::size_t act = 0; act < table.activities(); ++act) {
            table.set(cd, rd, act, level);
          }
        }
      }
      break;
  }
  return table;
}

std::vector<double> draw_deadlines(const std::vector<grid::Request>& requests,
                                   const sched::CostMatrix& eec,
                                   double min_slack, double max_slack,
                                   Rng& rng) {
  GT_REQUIRE(!requests.empty(), "need requests to draw deadlines for");
  GT_REQUIRE(eec.rows() == requests.size(),
             "EEC matrix must cover every request");
  GT_REQUIRE(min_slack >= 1.0 && min_slack <= max_slack,
             "slack range must satisfy 1 <= min <= max");
  std::vector<double> deadlines;
  deadlines.reserve(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    double best = eec.get(r, 0);
    for (std::size_t m = 1; m < eec.cols(); ++m) {
      best = std::min(best, eec.get(r, m));
    }
    const double slack = rng.uniform(min_slack, max_slack);
    deadlines.push_back(requests[r].arrival_time + slack * best);
  }
  return deadlines;
}

double deadline_miss_fraction(const sched::Schedule& schedule,
                              const std::vector<double>& deadlines) {
  GT_REQUIRE(!deadlines.empty(), "need deadlines to evaluate");
  GT_REQUIRE(schedule.machine_of.size() == deadlines.size(),
             "deadline count must match the schedule");
  std::size_t missed = 0;
  for (std::size_t r = 0; r < deadlines.size(); ++r) {
    GT_REQUIRE(schedule.machine_of[r] != sched::kUnassigned,
               "schedule is incomplete");
    if (schedule.completion[r] > deadlines[r]) ++missed;
  }
  return static_cast<double>(missed) / static_cast<double>(deadlines.size());
}

std::vector<grid::MetaRequest> form_meta_requests(
    const std::vector<grid::Request>& requests, double interval) {
  GT_REQUIRE(interval > 0.0, "batch interval must be positive");
  std::vector<grid::MetaRequest> batches;
  double last_arrival = 0.0;
  for (const grid::Request& req : requests) {
    GT_REQUIRE(req.arrival_time >= last_arrival,
               "requests must be sorted by arrival time");
    last_arrival = req.arrival_time;
    // The batch whose formation instant is the first tick at or after the
    // arrival; an arrival exactly on a tick joins that tick's batch.
    const auto index = static_cast<std::size_t>(
        std::ceil(req.arrival_time / interval));
    const std::size_t batch_index = index == 0 ? 1 : index;
    if (batches.empty() || batches.back().batch_index != batch_index - 1) {
      grid::MetaRequest batch;
      batch.batch_index = batch_index - 1;
      batch.formed_at = static_cast<double>(batch_index) * interval;
      batches.push_back(std::move(batch));
    }
    batches.back().requests.push_back(req);
  }
  return batches;
}

}  // namespace gridtrust::workload
