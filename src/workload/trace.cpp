#include "workload/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace gridtrust::workload {

namespace {

constexpr const char* kHeader = "gridtrust-trace v1";

std::string next_line(std::istream& is, const char* what) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    return line;
  }
  GT_REQUIRE(false, std::string("unexpected end of trace reading ") + what);
  return {};
}

}  // namespace

void save_trace(const std::vector<grid::Request>& requests,
                const sched::CostMatrix& eec, std::ostream& os) {
  GT_REQUIRE(!requests.empty(), "cannot save an empty trace");
  GT_REQUIRE(eec.rows() == requests.size(),
             "EEC matrix must have one row per request");
  os << kHeader << "\n"
     << "counts " << requests.size() << " " << eec.cols() << "\n";
  for (const grid::Request& req : requests) {
    GT_REQUIRE(!req.activities.empty(), "request without activities");
    os << "req " << req.id << " " << req.client << " "
       << req.client_domain << " "
       << trust::to_string(req.client_rtl) << " "
       << trust::to_string(req.resource_rtl) << " ";
    os.precision(17);
    os << req.arrival_time << " ";
    for (std::size_t i = 0; i < req.activities.size(); ++i) {
      os << (i ? "," : "") << req.activities[i];
    }
    os << "\n";
  }
  os.precision(17);
  for (std::size_t r = 0; r < eec.rows(); ++r) {
    os << "eec " << r;
    for (std::size_t m = 0; m < eec.cols(); ++m) os << " " << eec.get(r, m);
    os << "\n";
  }
}

Trace load_trace(std::istream& is) {
  GT_REQUIRE(next_line(is, "header") == kHeader,
             "not a gridtrust trace (bad header)");
  std::istringstream counts(next_line(is, "counts"));
  std::string tag;
  std::size_t n_requests = 0;
  std::size_t n_machines = 0;
  counts >> tag >> n_requests >> n_machines;
  GT_REQUIRE(!counts.fail() && tag == "counts", "malformed counts line");
  GT_REQUIRE(n_requests > 0 && n_machines > 0, "empty trace dimensions");

  Trace trace;
  trace.requests.reserve(n_requests);
  for (std::size_t i = 0; i < n_requests; ++i) {
    std::istringstream line(next_line(is, "req"));
    grid::Request req;
    std::string client_rtl;
    std::string resource_rtl;
    std::string acts;
    line >> tag >> req.id >> req.client >> req.client_domain >> client_rtl >>
        resource_rtl >> req.arrival_time >> acts;
    GT_REQUIRE(!line.fail() && tag == "req", "malformed req line");
    GT_REQUIRE(req.arrival_time >= 0.0, "negative arrival time");
    req.client_rtl = trust::level_from_string(client_rtl);
    req.resource_rtl = trust::level_from_string(resource_rtl);
    std::istringstream act_stream(acts);
    std::string token;
    while (std::getline(act_stream, token, ',')) {
      GT_REQUIRE(!token.empty(), "empty activity id in req line");
      std::size_t pos = 0;
      unsigned long long act = 0;
      try {
        act = std::stoull(token, &pos);
      } catch (const std::exception&) {
        GT_REQUIRE(false, "malformed activity id: " + token);
      }
      GT_REQUIRE(pos == token.size(), "malformed activity id: " + token);
      req.activities.push_back(static_cast<grid::ActivityId>(act));
    }
    GT_REQUIRE(!req.activities.empty(), "request without activities");
    trace.requests.push_back(std::move(req));
  }

  trace.eec = sched::CostMatrix(n_requests, n_machines);
  for (std::size_t i = 0; i < n_requests; ++i) {
    std::istringstream line(next_line(is, "eec"));
    std::size_t row = 0;
    line >> tag >> row;
    GT_REQUIRE(!line.fail() && tag == "eec" && row < n_requests,
               "malformed eec line");
    for (std::size_t m = 0; m < n_machines; ++m) {
      double v = 0.0;
      line >> v;
      GT_REQUIRE(!line.fail(), "eec row too short");
      GT_REQUIRE(v >= 0.0, "negative EEC value");
      trace.eec.at(row, m) = v;
    }
  }
  return trace;
}

std::string trace_to_string(const std::vector<grid::Request>& requests,
                            const sched::CostMatrix& eec) {
  std::ostringstream os;
  save_trace(requests, eec, os);
  return os.str();
}

Trace trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_trace(is);
}

}  // namespace gridtrust::workload
