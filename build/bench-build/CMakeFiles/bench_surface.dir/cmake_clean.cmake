file(REMOVE_RECURSE
  "../bench/bench_surface"
  "../bench/bench_surface.pdb"
  "CMakeFiles/bench_surface.dir/bench_surface.cpp.o"
  "CMakeFiles/bench_surface.dir/bench_surface.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
