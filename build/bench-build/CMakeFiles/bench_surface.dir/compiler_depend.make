# Empty compiler generated dependencies file for bench_surface.
# This may be replaced when dependencies are built.
