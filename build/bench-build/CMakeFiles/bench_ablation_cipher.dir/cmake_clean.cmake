file(REMOVE_RECURSE
  "../bench/bench_ablation_cipher"
  "../bench/bench_ablation_cipher.pdb"
  "CMakeFiles/bench_ablation_cipher.dir/bench_ablation_cipher.cpp.o"
  "CMakeFiles/bench_ablation_cipher.dir/bench_ablation_cipher.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cipher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
