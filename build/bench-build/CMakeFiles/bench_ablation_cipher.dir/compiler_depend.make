# Empty compiler generated dependencies file for bench_ablation_cipher.
# This may be replaced when dependencies are built.
