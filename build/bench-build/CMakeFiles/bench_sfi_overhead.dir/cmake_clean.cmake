file(REMOVE_RECURSE
  "../bench/bench_sfi_overhead"
  "../bench/bench_sfi_overhead.pdb"
  "CMakeFiles/bench_sfi_overhead.dir/bench_sfi_overhead.cpp.o"
  "CMakeFiles/bench_sfi_overhead.dir/bench_sfi_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sfi_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
