# Empty dependencies file for bench_sfi_overhead.
# This may be replaced when dependencies are built.
