file(REMOVE_RECURSE
  "../bench/bench_table4_mct_inconsistent"
  "../bench/bench_table4_mct_inconsistent.pdb"
  "CMakeFiles/bench_table4_mct_inconsistent.dir/bench_table4_mct_inconsistent.cpp.o"
  "CMakeFiles/bench_table4_mct_inconsistent.dir/bench_table4_mct_inconsistent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_mct_inconsistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
