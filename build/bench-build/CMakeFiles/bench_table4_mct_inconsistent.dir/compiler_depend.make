# Empty compiler generated dependencies file for bench_table4_mct_inconsistent.
# This may be replaced when dependencies are built.
