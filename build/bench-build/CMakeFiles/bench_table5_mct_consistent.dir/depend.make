# Empty dependencies file for bench_table5_mct_consistent.
# This may be replaced when dependencies are built.
