file(REMOVE_RECURSE
  "../bench/bench_perf_des"
  "../bench/bench_perf_des.pdb"
  "CMakeFiles/bench_perf_des.dir/bench_perf_des.cpp.o"
  "CMakeFiles/bench_perf_des.dir/bench_perf_des.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
