# Empty compiler generated dependencies file for bench_perf_des.
# This may be replaced when dependencies are built.
