# Empty dependencies file for bench_table9_sufferage_consistent.
# This may be replaced when dependencies are built.
