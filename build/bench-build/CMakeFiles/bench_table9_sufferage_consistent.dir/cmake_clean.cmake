file(REMOVE_RECURSE
  "../bench/bench_table9_sufferage_consistent"
  "../bench/bench_table9_sufferage_consistent.pdb"
  "CMakeFiles/bench_table9_sufferage_consistent.dir/bench_table9_sufferage_consistent.cpp.o"
  "CMakeFiles/bench_table9_sufferage_consistent.dir/bench_table9_sufferage_consistent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_sufferage_consistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
