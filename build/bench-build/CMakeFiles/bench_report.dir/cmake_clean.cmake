file(REMOVE_RECURSE
  "../bench/bench_report"
  "../bench/bench_report.pdb"
  "CMakeFiles/bench_report.dir/bench_report.cpp.o"
  "CMakeFiles/bench_report.dir/bench_report.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
