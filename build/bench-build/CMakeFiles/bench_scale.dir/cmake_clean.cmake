file(REMOVE_RECURSE
  "../bench/bench_scale"
  "../bench/bench_scale.pdb"
  "CMakeFiles/bench_scale.dir/bench_scale.cpp.o"
  "CMakeFiles/bench_scale.dir/bench_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
