file(REMOVE_RECURSE
  "../bench/bench_perf_sched"
  "../bench/bench_perf_sched.pdb"
  "CMakeFiles/bench_perf_sched.dir/bench_perf_sched.cpp.o"
  "CMakeFiles/bench_perf_sched.dir/bench_perf_sched.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
