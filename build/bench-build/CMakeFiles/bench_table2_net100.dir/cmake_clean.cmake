file(REMOVE_RECURSE
  "../bench/bench_table2_net100"
  "../bench/bench_table2_net100.pdb"
  "CMakeFiles/bench_table2_net100.dir/bench_table2_net100.cpp.o"
  "CMakeFiles/bench_table2_net100.dir/bench_table2_net100.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_net100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
