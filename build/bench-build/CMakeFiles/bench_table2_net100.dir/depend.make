# Empty dependencies file for bench_table2_net100.
# This may be replaced when dependencies are built.
