# Empty compiler generated dependencies file for bench_staging.
# This may be replaced when dependencies are built.
