file(REMOVE_RECURSE
  "../bench/bench_staging"
  "../bench/bench_staging.pdb"
  "CMakeFiles/bench_staging.dir/bench_staging.cpp.o"
  "CMakeFiles/bench_staging.dir/bench_staging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
