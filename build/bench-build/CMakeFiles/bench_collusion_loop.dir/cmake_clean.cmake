file(REMOVE_RECURSE
  "../bench/bench_collusion_loop"
  "../bench/bench_collusion_loop.pdb"
  "CMakeFiles/bench_collusion_loop.dir/bench_collusion_loop.cpp.o"
  "CMakeFiles/bench_collusion_loop.dir/bench_collusion_loop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collusion_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
