# Empty compiler generated dependencies file for bench_collusion_loop.
# This may be replaced when dependencies are built.
