file(REMOVE_RECURSE
  "libgridtrust_bench_support.a"
)
