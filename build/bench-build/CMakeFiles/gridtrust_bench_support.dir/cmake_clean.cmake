file(REMOVE_RECURSE
  "CMakeFiles/gridtrust_bench_support.dir/support.cpp.o"
  "CMakeFiles/gridtrust_bench_support.dir/support.cpp.o.d"
  "libgridtrust_bench_support.a"
  "libgridtrust_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridtrust_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
