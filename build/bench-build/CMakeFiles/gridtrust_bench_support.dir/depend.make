# Empty dependencies file for gridtrust_bench_support.
# This may be replaced when dependencies are built.
