# Empty compiler generated dependencies file for bench_table8_sufferage_inconsistent.
# This may be replaced when dependencies are built.
