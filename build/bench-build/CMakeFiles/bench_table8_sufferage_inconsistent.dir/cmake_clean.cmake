file(REMOVE_RECURSE
  "../bench/bench_table8_sufferage_inconsistent"
  "../bench/bench_table8_sufferage_inconsistent.pdb"
  "CMakeFiles/bench_table8_sufferage_inconsistent.dir/bench_table8_sufferage_inconsistent.cpp.o"
  "CMakeFiles/bench_table8_sufferage_inconsistent.dir/bench_table8_sufferage_inconsistent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_sufferage_inconsistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
