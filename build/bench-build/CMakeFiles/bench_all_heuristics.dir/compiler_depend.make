# Empty compiler generated dependencies file for bench_all_heuristics.
# This may be replaced when dependencies are built.
