file(REMOVE_RECURSE
  "../bench/bench_all_heuristics"
  "../bench/bench_all_heuristics.pdb"
  "CMakeFiles/bench_all_heuristics.dir/bench_all_heuristics.cpp.o"
  "CMakeFiles/bench_all_heuristics.dir/bench_all_heuristics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_all_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
