file(REMOVE_RECURSE
  "../bench/bench_ablation_trust_weight"
  "../bench/bench_ablation_trust_weight.pdb"
  "CMakeFiles/bench_ablation_trust_weight.dir/bench_ablation_trust_weight.cpp.o"
  "CMakeFiles/bench_ablation_trust_weight.dir/bench_ablation_trust_weight.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trust_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
