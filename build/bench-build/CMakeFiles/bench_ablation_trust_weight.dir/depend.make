# Empty dependencies file for bench_ablation_trust_weight.
# This may be replaced when dependencies are built.
