file(REMOVE_RECURSE
  "../bench/bench_trust_evolution"
  "../bench/bench_trust_evolution.pdb"
  "CMakeFiles/bench_trust_evolution.dir/bench_trust_evolution.cpp.o"
  "CMakeFiles/bench_trust_evolution.dir/bench_trust_evolution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trust_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
