file(REMOVE_RECURSE
  "../bench/bench_distributed"
  "../bench/bench_distributed.pdb"
  "CMakeFiles/bench_distributed.dir/bench_distributed.cpp.o"
  "CMakeFiles/bench_distributed.dir/bench_distributed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
