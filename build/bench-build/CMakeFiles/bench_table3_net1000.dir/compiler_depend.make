# Empty compiler generated dependencies file for bench_table3_net1000.
# This may be replaced when dependencies are built.
