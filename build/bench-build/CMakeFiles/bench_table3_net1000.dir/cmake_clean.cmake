file(REMOVE_RECURSE
  "../bench/bench_table3_net1000"
  "../bench/bench_table3_net1000.pdb"
  "CMakeFiles/bench_table3_net1000.dir/bench_table3_net1000.cpp.o"
  "CMakeFiles/bench_table3_net1000.dir/bench_table3_net1000.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_net1000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
