file(REMOVE_RECURSE
  "../bench/bench_table1_ets"
  "../bench/bench_table1_ets.pdb"
  "CMakeFiles/bench_table1_ets.dir/bench_table1_ets.cpp.o"
  "CMakeFiles/bench_table1_ets.dir/bench_table1_ets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
