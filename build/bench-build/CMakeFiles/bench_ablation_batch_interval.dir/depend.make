# Empty dependencies file for bench_ablation_batch_interval.
# This may be replaced when dependencies are built.
