# Empty compiler generated dependencies file for bench_table7_min_min_consistent.
# This may be replaced when dependencies are built.
