file(REMOVE_RECURSE
  "../bench/bench_table7_min_min_consistent"
  "../bench/bench_table7_min_min_consistent.pdb"
  "CMakeFiles/bench_table7_min_min_consistent.dir/bench_table7_min_min_consistent.cpp.o"
  "CMakeFiles/bench_table7_min_min_consistent.dir/bench_table7_min_min_consistent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_min_min_consistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
