# Empty dependencies file for bench_compromise.
# This may be replaced when dependencies are built.
