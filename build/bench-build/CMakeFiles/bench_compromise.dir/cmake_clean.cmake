file(REMOVE_RECURSE
  "../bench/bench_compromise"
  "../bench/bench_compromise.pdb"
  "CMakeFiles/bench_compromise.dir/bench_compromise.cpp.o"
  "CMakeFiles/bench_compromise.dir/bench_compromise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compromise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
