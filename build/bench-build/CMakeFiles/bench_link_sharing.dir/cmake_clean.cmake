file(REMOVE_RECURSE
  "../bench/bench_link_sharing"
  "../bench/bench_link_sharing.pdb"
  "CMakeFiles/bench_link_sharing.dir/bench_link_sharing.cpp.o"
  "CMakeFiles/bench_link_sharing.dir/bench_link_sharing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
