file(REMOVE_RECURSE
  "../bench/bench_deadlines"
  "../bench/bench_deadlines.pdb"
  "CMakeFiles/bench_deadlines.dir/bench_deadlines.cpp.o"
  "CMakeFiles/bench_deadlines.dir/bench_deadlines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deadlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
