# Empty dependencies file for bench_ablation_security_policy.
# This may be replaced when dependencies are built.
