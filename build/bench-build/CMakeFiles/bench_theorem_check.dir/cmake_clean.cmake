file(REMOVE_RECURSE
  "../bench/bench_theorem_check"
  "../bench/bench_theorem_check.pdb"
  "CMakeFiles/bench_theorem_check.dir/bench_theorem_check.cpp.o"
  "CMakeFiles/bench_theorem_check.dir/bench_theorem_check.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
