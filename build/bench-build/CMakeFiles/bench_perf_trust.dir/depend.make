# Empty dependencies file for bench_perf_trust.
# This may be replaced when dependencies are built.
