file(REMOVE_RECURSE
  "../bench/bench_perf_trust"
  "../bench/bench_perf_trust.pdb"
  "CMakeFiles/bench_perf_trust.dir/bench_perf_trust.cpp.o"
  "CMakeFiles/bench_perf_trust.dir/bench_perf_trust.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
