file(REMOVE_RECURSE
  "../bench/bench_table6_min_min_inconsistent"
  "../bench/bench_table6_min_min_inconsistent.pdb"
  "CMakeFiles/bench_table6_min_min_inconsistent.dir/bench_table6_min_min_inconsistent.cpp.o"
  "CMakeFiles/bench_table6_min_min_inconsistent.dir/bench_table6_min_min_inconsistent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_min_min_inconsistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
