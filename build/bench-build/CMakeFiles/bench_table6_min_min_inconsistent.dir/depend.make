# Empty dependencies file for bench_table6_min_min_inconsistent.
# This may be replaced when dependencies are built.
