# Empty compiler generated dependencies file for bench_ablation_interpretation.
# This may be replaced when dependencies are built.
