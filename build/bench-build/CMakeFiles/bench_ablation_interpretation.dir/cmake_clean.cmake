file(REMOVE_RECURSE
  "../bench/bench_ablation_interpretation"
  "../bench/bench_ablation_interpretation.pdb"
  "CMakeFiles/bench_ablation_interpretation.dir/bench_ablation_interpretation.cpp.o"
  "CMakeFiles/bench_ablation_interpretation.dir/bench_ablation_interpretation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interpretation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
