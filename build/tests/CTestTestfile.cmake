# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_des[1]_include.cmake")
include("/root/repo/build/tests/test_trust[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sfi[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_closed_loop[1]_include.cmake")
include("/root/repo/build/tests/test_link_sim[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_gantt[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_queueing[1]_include.cmake")
include("/root/repo/build/tests/test_beta[1]_include.cmake")
include("/root/repo/build/tests/test_staging[1]_include.cmake")
include("/root/repo/build/tests/test_manager[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
