# Empty dependencies file for test_trust.
# This may be replaced when dependencies are built.
