# Empty dependencies file for test_sfi.
# This may be replaced when dependencies are built.
