# Empty compiler generated dependencies file for test_link_sim.
# This may be replaced when dependencies are built.
