file(REMOVE_RECURSE
  "CMakeFiles/test_link_sim.dir/test_link_sim.cpp.o"
  "CMakeFiles/test_link_sim.dir/test_link_sim.cpp.o.d"
  "test_link_sim"
  "test_link_sim.pdb"
  "test_link_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
