# Empty dependencies file for test_beta.
# This may be replaced when dependencies are built.
