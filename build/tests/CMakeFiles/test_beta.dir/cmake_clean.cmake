file(REMOVE_RECURSE
  "CMakeFiles/test_beta.dir/test_beta.cpp.o"
  "CMakeFiles/test_beta.dir/test_beta.cpp.o.d"
  "test_beta"
  "test_beta.pdb"
  "test_beta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
