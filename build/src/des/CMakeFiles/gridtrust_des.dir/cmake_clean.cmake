file(REMOVE_RECURSE
  "CMakeFiles/gridtrust_des.dir/arrival.cpp.o"
  "CMakeFiles/gridtrust_des.dir/arrival.cpp.o.d"
  "CMakeFiles/gridtrust_des.dir/simulator.cpp.o"
  "CMakeFiles/gridtrust_des.dir/simulator.cpp.o.d"
  "libgridtrust_des.a"
  "libgridtrust_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridtrust_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
