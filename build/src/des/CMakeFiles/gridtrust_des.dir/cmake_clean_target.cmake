file(REMOVE_RECURSE
  "libgridtrust_des.a"
)
