# Empty dependencies file for gridtrust_des.
# This may be replaced when dependencies are built.
