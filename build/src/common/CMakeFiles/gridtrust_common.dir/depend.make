# Empty dependencies file for gridtrust_common.
# This may be replaced when dependencies are built.
