file(REMOVE_RECURSE
  "libgridtrust_common.a"
)
