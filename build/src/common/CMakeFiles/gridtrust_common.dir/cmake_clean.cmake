file(REMOVE_RECURSE
  "CMakeFiles/gridtrust_common.dir/cli.cpp.o"
  "CMakeFiles/gridtrust_common.dir/cli.cpp.o.d"
  "CMakeFiles/gridtrust_common.dir/error.cpp.o"
  "CMakeFiles/gridtrust_common.dir/error.cpp.o.d"
  "CMakeFiles/gridtrust_common.dir/log.cpp.o"
  "CMakeFiles/gridtrust_common.dir/log.cpp.o.d"
  "CMakeFiles/gridtrust_common.dir/rng.cpp.o"
  "CMakeFiles/gridtrust_common.dir/rng.cpp.o.d"
  "CMakeFiles/gridtrust_common.dir/stats.cpp.o"
  "CMakeFiles/gridtrust_common.dir/stats.cpp.o.d"
  "CMakeFiles/gridtrust_common.dir/table.cpp.o"
  "CMakeFiles/gridtrust_common.dir/table.cpp.o.d"
  "CMakeFiles/gridtrust_common.dir/thread_pool.cpp.o"
  "CMakeFiles/gridtrust_common.dir/thread_pool.cpp.o.d"
  "libgridtrust_common.a"
  "libgridtrust_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridtrust_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
