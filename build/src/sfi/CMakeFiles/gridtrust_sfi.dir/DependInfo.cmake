
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfi/harness.cpp" "src/sfi/CMakeFiles/gridtrust_sfi.dir/harness.cpp.o" "gcc" "src/sfi/CMakeFiles/gridtrust_sfi.dir/harness.cpp.o.d"
  "/root/repo/src/sfi/md5.cpp" "src/sfi/CMakeFiles/gridtrust_sfi.dir/md5.cpp.o" "gcc" "src/sfi/CMakeFiles/gridtrust_sfi.dir/md5.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridtrust_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
