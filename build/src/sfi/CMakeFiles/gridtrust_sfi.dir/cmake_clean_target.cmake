file(REMOVE_RECURSE
  "libgridtrust_sfi.a"
)
