# Empty dependencies file for gridtrust_sfi.
# This may be replaced when dependencies are built.
