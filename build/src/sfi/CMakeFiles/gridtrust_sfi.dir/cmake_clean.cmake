file(REMOVE_RECURSE
  "CMakeFiles/gridtrust_sfi.dir/harness.cpp.o"
  "CMakeFiles/gridtrust_sfi.dir/harness.cpp.o.d"
  "CMakeFiles/gridtrust_sfi.dir/md5.cpp.o"
  "CMakeFiles/gridtrust_sfi.dir/md5.cpp.o.d"
  "libgridtrust_sfi.a"
  "libgridtrust_sfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridtrust_sfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
