# Empty dependencies file for gridtrust_sched.
# This may be replaced when dependencies are built.
