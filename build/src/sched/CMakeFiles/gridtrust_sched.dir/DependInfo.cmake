
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/batch.cpp" "src/sched/CMakeFiles/gridtrust_sched.dir/batch.cpp.o" "gcc" "src/sched/CMakeFiles/gridtrust_sched.dir/batch.cpp.o.d"
  "/root/repo/src/sched/executor.cpp" "src/sched/CMakeFiles/gridtrust_sched.dir/executor.cpp.o" "gcc" "src/sched/CMakeFiles/gridtrust_sched.dir/executor.cpp.o.d"
  "/root/repo/src/sched/gantt.cpp" "src/sched/CMakeFiles/gridtrust_sched.dir/gantt.cpp.o" "gcc" "src/sched/CMakeFiles/gridtrust_sched.dir/gantt.cpp.o.d"
  "/root/repo/src/sched/genetic.cpp" "src/sched/CMakeFiles/gridtrust_sched.dir/genetic.cpp.o" "gcc" "src/sched/CMakeFiles/gridtrust_sched.dir/genetic.cpp.o.d"
  "/root/repo/src/sched/immediate.cpp" "src/sched/CMakeFiles/gridtrust_sched.dir/immediate.cpp.o" "gcc" "src/sched/CMakeFiles/gridtrust_sched.dir/immediate.cpp.o.d"
  "/root/repo/src/sched/local_search.cpp" "src/sched/CMakeFiles/gridtrust_sched.dir/local_search.cpp.o" "gcc" "src/sched/CMakeFiles/gridtrust_sched.dir/local_search.cpp.o.d"
  "/root/repo/src/sched/problem.cpp" "src/sched/CMakeFiles/gridtrust_sched.dir/problem.cpp.o" "gcc" "src/sched/CMakeFiles/gridtrust_sched.dir/problem.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/gridtrust_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/gridtrust_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/security_model.cpp" "src/sched/CMakeFiles/gridtrust_sched.dir/security_model.cpp.o" "gcc" "src/sched/CMakeFiles/gridtrust_sched.dir/security_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridtrust_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/gridtrust_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/gridtrust_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/gridtrust_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
