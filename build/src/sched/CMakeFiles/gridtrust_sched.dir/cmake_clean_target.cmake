file(REMOVE_RECURSE
  "libgridtrust_sched.a"
)
