file(REMOVE_RECURSE
  "CMakeFiles/gridtrust_sched.dir/batch.cpp.o"
  "CMakeFiles/gridtrust_sched.dir/batch.cpp.o.d"
  "CMakeFiles/gridtrust_sched.dir/executor.cpp.o"
  "CMakeFiles/gridtrust_sched.dir/executor.cpp.o.d"
  "CMakeFiles/gridtrust_sched.dir/gantt.cpp.o"
  "CMakeFiles/gridtrust_sched.dir/gantt.cpp.o.d"
  "CMakeFiles/gridtrust_sched.dir/genetic.cpp.o"
  "CMakeFiles/gridtrust_sched.dir/genetic.cpp.o.d"
  "CMakeFiles/gridtrust_sched.dir/immediate.cpp.o"
  "CMakeFiles/gridtrust_sched.dir/immediate.cpp.o.d"
  "CMakeFiles/gridtrust_sched.dir/local_search.cpp.o"
  "CMakeFiles/gridtrust_sched.dir/local_search.cpp.o.d"
  "CMakeFiles/gridtrust_sched.dir/problem.cpp.o"
  "CMakeFiles/gridtrust_sched.dir/problem.cpp.o.d"
  "CMakeFiles/gridtrust_sched.dir/schedule.cpp.o"
  "CMakeFiles/gridtrust_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/gridtrust_sched.dir/security_model.cpp.o"
  "CMakeFiles/gridtrust_sched.dir/security_model.cpp.o.d"
  "libgridtrust_sched.a"
  "libgridtrust_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridtrust_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
