# Empty dependencies file for gridtrust_workload.
# This may be replaced when dependencies are built.
