file(REMOVE_RECURSE
  "CMakeFiles/gridtrust_workload.dir/heterogeneity.cpp.o"
  "CMakeFiles/gridtrust_workload.dir/heterogeneity.cpp.o.d"
  "CMakeFiles/gridtrust_workload.dir/request_gen.cpp.o"
  "CMakeFiles/gridtrust_workload.dir/request_gen.cpp.o.d"
  "CMakeFiles/gridtrust_workload.dir/trace.cpp.o"
  "CMakeFiles/gridtrust_workload.dir/trace.cpp.o.d"
  "libgridtrust_workload.a"
  "libgridtrust_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridtrust_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
