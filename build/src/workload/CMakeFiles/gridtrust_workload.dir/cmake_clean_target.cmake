file(REMOVE_RECURSE
  "libgridtrust_workload.a"
)
