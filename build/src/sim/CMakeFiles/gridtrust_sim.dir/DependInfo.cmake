
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/closed_loop.cpp" "src/sim/CMakeFiles/gridtrust_sim.dir/closed_loop.cpp.o" "gcc" "src/sim/CMakeFiles/gridtrust_sim.dir/closed_loop.cpp.o.d"
  "/root/repo/src/sim/distributed.cpp" "src/sim/CMakeFiles/gridtrust_sim.dir/distributed.cpp.o" "gcc" "src/sim/CMakeFiles/gridtrust_sim.dir/distributed.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/gridtrust_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/gridtrust_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/staging.cpp" "src/sim/CMakeFiles/gridtrust_sim.dir/staging.cpp.o" "gcc" "src/sim/CMakeFiles/gridtrust_sim.dir/staging.cpp.o.d"
  "/root/repo/src/sim/trm_simulation.cpp" "src/sim/CMakeFiles/gridtrust_sim.dir/trm_simulation.cpp.o" "gcc" "src/sim/CMakeFiles/gridtrust_sim.dir/trm_simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridtrust_common.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/gridtrust_des.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/gridtrust_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridtrust_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/gridtrust_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/gridtrust_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gridtrust_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
