file(REMOVE_RECURSE
  "libgridtrust_sim.a"
)
