file(REMOVE_RECURSE
  "CMakeFiles/gridtrust_sim.dir/closed_loop.cpp.o"
  "CMakeFiles/gridtrust_sim.dir/closed_loop.cpp.o.d"
  "CMakeFiles/gridtrust_sim.dir/distributed.cpp.o"
  "CMakeFiles/gridtrust_sim.dir/distributed.cpp.o.d"
  "CMakeFiles/gridtrust_sim.dir/experiment.cpp.o"
  "CMakeFiles/gridtrust_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/gridtrust_sim.dir/staging.cpp.o"
  "CMakeFiles/gridtrust_sim.dir/staging.cpp.o.d"
  "CMakeFiles/gridtrust_sim.dir/trm_simulation.cpp.o"
  "CMakeFiles/gridtrust_sim.dir/trm_simulation.cpp.o.d"
  "libgridtrust_sim.a"
  "libgridtrust_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridtrust_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
