# Empty dependencies file for gridtrust_sim.
# This may be replaced when dependencies are built.
