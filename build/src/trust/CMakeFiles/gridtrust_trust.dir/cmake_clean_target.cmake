file(REMOVE_RECURSE
  "libgridtrust_trust.a"
)
