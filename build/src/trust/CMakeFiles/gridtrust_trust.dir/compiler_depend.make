# Empty compiler generated dependencies file for gridtrust_trust.
# This may be replaced when dependencies are built.
