file(REMOVE_RECURSE
  "CMakeFiles/gridtrust_trust.dir/agents.cpp.o"
  "CMakeFiles/gridtrust_trust.dir/agents.cpp.o.d"
  "CMakeFiles/gridtrust_trust.dir/alliance.cpp.o"
  "CMakeFiles/gridtrust_trust.dir/alliance.cpp.o.d"
  "CMakeFiles/gridtrust_trust.dir/beta_reputation.cpp.o"
  "CMakeFiles/gridtrust_trust.dir/beta_reputation.cpp.o.d"
  "CMakeFiles/gridtrust_trust.dir/decay.cpp.o"
  "CMakeFiles/gridtrust_trust.dir/decay.cpp.o.d"
  "CMakeFiles/gridtrust_trust.dir/ets.cpp.o"
  "CMakeFiles/gridtrust_trust.dir/ets.cpp.o.d"
  "CMakeFiles/gridtrust_trust.dir/manager.cpp.o"
  "CMakeFiles/gridtrust_trust.dir/manager.cpp.o.d"
  "CMakeFiles/gridtrust_trust.dir/report.cpp.o"
  "CMakeFiles/gridtrust_trust.dir/report.cpp.o.d"
  "CMakeFiles/gridtrust_trust.dir/serialization.cpp.o"
  "CMakeFiles/gridtrust_trust.dir/serialization.cpp.o.d"
  "CMakeFiles/gridtrust_trust.dir/trust_engine.cpp.o"
  "CMakeFiles/gridtrust_trust.dir/trust_engine.cpp.o.d"
  "CMakeFiles/gridtrust_trust.dir/trust_level.cpp.o"
  "CMakeFiles/gridtrust_trust.dir/trust_level.cpp.o.d"
  "CMakeFiles/gridtrust_trust.dir/trust_table.cpp.o"
  "CMakeFiles/gridtrust_trust.dir/trust_table.cpp.o.d"
  "libgridtrust_trust.a"
  "libgridtrust_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridtrust_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
