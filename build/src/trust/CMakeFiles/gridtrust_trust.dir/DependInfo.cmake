
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trust/agents.cpp" "src/trust/CMakeFiles/gridtrust_trust.dir/agents.cpp.o" "gcc" "src/trust/CMakeFiles/gridtrust_trust.dir/agents.cpp.o.d"
  "/root/repo/src/trust/alliance.cpp" "src/trust/CMakeFiles/gridtrust_trust.dir/alliance.cpp.o" "gcc" "src/trust/CMakeFiles/gridtrust_trust.dir/alliance.cpp.o.d"
  "/root/repo/src/trust/beta_reputation.cpp" "src/trust/CMakeFiles/gridtrust_trust.dir/beta_reputation.cpp.o" "gcc" "src/trust/CMakeFiles/gridtrust_trust.dir/beta_reputation.cpp.o.d"
  "/root/repo/src/trust/decay.cpp" "src/trust/CMakeFiles/gridtrust_trust.dir/decay.cpp.o" "gcc" "src/trust/CMakeFiles/gridtrust_trust.dir/decay.cpp.o.d"
  "/root/repo/src/trust/ets.cpp" "src/trust/CMakeFiles/gridtrust_trust.dir/ets.cpp.o" "gcc" "src/trust/CMakeFiles/gridtrust_trust.dir/ets.cpp.o.d"
  "/root/repo/src/trust/manager.cpp" "src/trust/CMakeFiles/gridtrust_trust.dir/manager.cpp.o" "gcc" "src/trust/CMakeFiles/gridtrust_trust.dir/manager.cpp.o.d"
  "/root/repo/src/trust/report.cpp" "src/trust/CMakeFiles/gridtrust_trust.dir/report.cpp.o" "gcc" "src/trust/CMakeFiles/gridtrust_trust.dir/report.cpp.o.d"
  "/root/repo/src/trust/serialization.cpp" "src/trust/CMakeFiles/gridtrust_trust.dir/serialization.cpp.o" "gcc" "src/trust/CMakeFiles/gridtrust_trust.dir/serialization.cpp.o.d"
  "/root/repo/src/trust/trust_engine.cpp" "src/trust/CMakeFiles/gridtrust_trust.dir/trust_engine.cpp.o" "gcc" "src/trust/CMakeFiles/gridtrust_trust.dir/trust_engine.cpp.o.d"
  "/root/repo/src/trust/trust_level.cpp" "src/trust/CMakeFiles/gridtrust_trust.dir/trust_level.cpp.o" "gcc" "src/trust/CMakeFiles/gridtrust_trust.dir/trust_level.cpp.o.d"
  "/root/repo/src/trust/trust_table.cpp" "src/trust/CMakeFiles/gridtrust_trust.dir/trust_table.cpp.o" "gcc" "src/trust/CMakeFiles/gridtrust_trust.dir/trust_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridtrust_common.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/gridtrust_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
