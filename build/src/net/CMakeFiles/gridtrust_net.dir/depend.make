# Empty dependencies file for gridtrust_net.
# This may be replaced when dependencies are built.
