file(REMOVE_RECURSE
  "libgridtrust_net.a"
)
