
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/link_sim.cpp" "src/net/CMakeFiles/gridtrust_net.dir/link_sim.cpp.o" "gcc" "src/net/CMakeFiles/gridtrust_net.dir/link_sim.cpp.o.d"
  "/root/repo/src/net/report.cpp" "src/net/CMakeFiles/gridtrust_net.dir/report.cpp.o" "gcc" "src/net/CMakeFiles/gridtrust_net.dir/report.cpp.o.d"
  "/root/repo/src/net/transfer_model.cpp" "src/net/CMakeFiles/gridtrust_net.dir/transfer_model.cpp.o" "gcc" "src/net/CMakeFiles/gridtrust_net.dir/transfer_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridtrust_common.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/gridtrust_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
