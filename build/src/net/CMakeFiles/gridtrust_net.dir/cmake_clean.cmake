file(REMOVE_RECURSE
  "CMakeFiles/gridtrust_net.dir/link_sim.cpp.o"
  "CMakeFiles/gridtrust_net.dir/link_sim.cpp.o.d"
  "CMakeFiles/gridtrust_net.dir/report.cpp.o"
  "CMakeFiles/gridtrust_net.dir/report.cpp.o.d"
  "CMakeFiles/gridtrust_net.dir/transfer_model.cpp.o"
  "CMakeFiles/gridtrust_net.dir/transfer_model.cpp.o.d"
  "libgridtrust_net.a"
  "libgridtrust_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridtrust_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
