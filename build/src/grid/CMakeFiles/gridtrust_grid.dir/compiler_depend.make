# Empty compiler generated dependencies file for gridtrust_grid.
# This may be replaced when dependencies are built.
