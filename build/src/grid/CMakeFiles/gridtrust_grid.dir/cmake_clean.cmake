file(REMOVE_RECURSE
  "CMakeFiles/gridtrust_grid.dir/activity.cpp.o"
  "CMakeFiles/gridtrust_grid.dir/activity.cpp.o.d"
  "CMakeFiles/gridtrust_grid.dir/grid_system.cpp.o"
  "CMakeFiles/gridtrust_grid.dir/grid_system.cpp.o.d"
  "libgridtrust_grid.a"
  "libgridtrust_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridtrust_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
