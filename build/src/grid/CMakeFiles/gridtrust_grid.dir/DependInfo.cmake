
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/activity.cpp" "src/grid/CMakeFiles/gridtrust_grid.dir/activity.cpp.o" "gcc" "src/grid/CMakeFiles/gridtrust_grid.dir/activity.cpp.o.d"
  "/root/repo/src/grid/grid_system.cpp" "src/grid/CMakeFiles/gridtrust_grid.dir/grid_system.cpp.o" "gcc" "src/grid/CMakeFiles/gridtrust_grid.dir/grid_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridtrust_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/gridtrust_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/gridtrust_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
