file(REMOVE_RECURSE
  "libgridtrust_grid.a"
)
