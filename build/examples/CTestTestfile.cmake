# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--tasks=15" "--seed=2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_campus_grid "/root/repo/build/examples/campus_grid" "--tasks=12" "--seed=3")
set_tests_properties(example_campus_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trust_federation "/root/repo/build/examples/trust_federation" "--rounds=6")
set_tests_properties(example_trust_federation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_secure_transfer_planner "/root/repo/build/examples/secure_transfer_planner" "--size=100" "--offered=B" "--required=E")
set_tests_properties(example_secure_transfer_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_rms "/root/repo/build/examples/adaptive_rms" "--rounds=4")
set_tests_properties(example_adaptive_rms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replay_tool "/root/repo/build/examples/replay_tool" "--policy=both" "--gantt")
set_tests_properties(example_replay_tool PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
