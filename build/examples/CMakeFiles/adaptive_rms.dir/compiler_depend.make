# Empty compiler generated dependencies file for adaptive_rms.
# This may be replaced when dependencies are built.
