file(REMOVE_RECURSE
  "CMakeFiles/adaptive_rms.dir/adaptive_rms.cpp.o"
  "CMakeFiles/adaptive_rms.dir/adaptive_rms.cpp.o.d"
  "adaptive_rms"
  "adaptive_rms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
