# Empty dependencies file for trust_federation.
# This may be replaced when dependencies are built.
