file(REMOVE_RECURSE
  "CMakeFiles/trust_federation.dir/trust_federation.cpp.o"
  "CMakeFiles/trust_federation.dir/trust_federation.cpp.o.d"
  "trust_federation"
  "trust_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
