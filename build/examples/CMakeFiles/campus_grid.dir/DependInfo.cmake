
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/campus_grid.cpp" "examples/CMakeFiles/campus_grid.dir/campus_grid.cpp.o" "gcc" "examples/CMakeFiles/campus_grid.dir/campus_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gridtrust_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gridtrust_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/gridtrust_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/gridtrust_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/gridtrust_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridtrust_net.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/gridtrust_des.dir/DependInfo.cmake"
  "/root/repo/build/src/sfi/CMakeFiles/gridtrust_sfi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gridtrust_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
