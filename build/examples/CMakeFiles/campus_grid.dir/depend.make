# Empty dependencies file for campus_grid.
# This may be replaced when dependencies are built.
