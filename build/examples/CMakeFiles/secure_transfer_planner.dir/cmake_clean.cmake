file(REMOVE_RECURSE
  "CMakeFiles/secure_transfer_planner.dir/secure_transfer_planner.cpp.o"
  "CMakeFiles/secure_transfer_planner.dir/secure_transfer_planner.cpp.o.d"
  "secure_transfer_planner"
  "secure_transfer_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_transfer_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
