# Empty dependencies file for secure_transfer_planner.
# This may be replaced when dependencies are built.
