// Tests for the distributed (per-domain) RMS.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/distributed.hpp"

namespace gridtrust::sim {
namespace {

struct Instance {
  sched::SchedulingProblem problem;
  std::vector<grid::ClientDomainId> owner;
};

Instance make_instance(std::uint64_t seed, std::size_t n = 40,
                       std::size_t m = 5, std::size_t domains = 3,
                       double arrival_rate = 1.0) {
  Rng rng(seed);
  sched::CostMatrix eec(n, m);
  sched::TrustCostMatrix tc(n, m);
  std::vector<double> arrivals(n);
  std::vector<grid::ClientDomainId> owner(n);
  double t = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      eec.at(r, c) = rng.uniform(5.0, 50.0);
      tc.at(r, c) = static_cast<int>(rng.uniform_int(0, 6));
    }
    if (arrival_rate > 0) t += rng.exponential(1.0 / arrival_rate);
    arrivals[r] = t;
    owner[r] = rng.index(domains);
  }
  return Instance{sched::SchedulingProblem(std::move(eec), std::move(tc),
                                           sched::trust_aware_policy(),
                                           sched::SecurityCostModel{},
                                           std::move(arrivals)),
                  std::move(owner)};
}

TEST(Distributed, ProducesACompleteValidSchedule) {
  const Instance inst = make_instance(1);
  DistributedConfig config;
  const DistributedResult result =
      run_distributed(inst.problem, inst.owner, config);
  EXPECT_TRUE(result.schedule.complete());
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_GT(result.utilization_pct, 0.0);
  EXPECT_LE(result.utilization_pct, 100.0 + 1e-9);
  for (std::size_t r = 0; r < inst.problem.num_requests(); ++r) {
    EXPECT_GE(result.schedule.start[r],
              inst.problem.arrival_time(r) - 1e-9);
  }
}

TEST(Distributed, SingleOwnerMatchesCentralImmediateMode) {
  // With one domain owning everything and any sync interval, the view and
  // the truth coincide, so the outcome equals the central immediate RMS.
  Instance inst = make_instance(2);
  std::fill(inst.owner.begin(), inst.owner.end(), grid::ClientDomainId{0});
  DistributedConfig config;
  config.heuristic = "mct";
  const DistributedResult dist =
      run_distributed(inst.problem, inst.owner, config);
  TrmsConfig central_cfg;
  central_cfg.heuristic = "mct";
  const SimulationResult central = run_trms(inst.problem, central_cfg);
  EXPECT_EQ(dist.schedule.machine_of, central.schedule.machine_of);
  EXPECT_NEAR(dist.makespan, central.makespan, 1e-9);
  EXPECT_NEAR(dist.mean_decision_error, 0.0, 1e-9);
}

TEST(Distributed, StaleViewsCreateDecisionError) {
  const Instance inst = make_instance(3);
  DistributedConfig config;
  config.sync_interval = 0.0;  // never sync: maximal staleness
  const DistributedResult result =
      run_distributed(inst.problem, inst.owner, config);
  EXPECT_EQ(result.syncs, 0u);
  EXPECT_GT(result.mean_decision_error, 0.0);
}

TEST(Distributed, FrequentSyncReducesDecisionError) {
  const Instance inst = make_instance(4, 80);
  DistributedConfig fast;
  fast.sync_interval = 1.0;
  DistributedConfig never;
  never.sync_interval = 0.0;
  const DistributedResult r_fast =
      run_distributed(inst.problem, inst.owner, fast);
  const DistributedResult r_never =
      run_distributed(inst.problem, inst.owner, never);
  EXPECT_GT(r_fast.syncs, 0u);
  EXPECT_LT(r_fast.mean_decision_error, r_never.mean_decision_error);
}

TEST(Distributed, WorksWithEveryImmediateHeuristic) {
  const Instance inst = make_instance(5, 30);
  for (const std::string& name : sched::immediate_heuristic_names()) {
    DistributedConfig config;
    config.heuristic = name;
    const DistributedResult result =
        run_distributed(inst.problem, inst.owner, config);
    EXPECT_TRUE(result.schedule.complete()) << name;
  }
}

TEST(Distributed, DeterministicForSameInput) {
  const Instance inst = make_instance(6);
  DistributedConfig config;
  const DistributedResult a = run_distributed(inst.problem, inst.owner, config);
  const DistributedResult b = run_distributed(inst.problem, inst.owner, config);
  EXPECT_EQ(a.schedule.machine_of, b.schedule.machine_of);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Distributed, Validation) {
  const Instance inst = make_instance(7);
  DistributedConfig config;
  std::vector<grid::ClientDomainId> short_owner(
      inst.problem.num_requests() - 1, 0);
  EXPECT_THROW(run_distributed(inst.problem, short_owner, config),
               PreconditionError);
  config.heuristic = "not-a-heuristic";
  EXPECT_THROW(run_distributed(inst.problem, inst.owner, config),
               PreconditionError);
}

}  // namespace
}  // namespace gridtrust::sim
