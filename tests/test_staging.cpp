// Tests for data-staging-aware scheduling (sim/staging).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/experiment.hpp"
#include "sim/staging.hpp"

namespace gridtrust::sim {
namespace {

net::TransferModel wan() {
  const net::LinkProfile link = net::fast_ethernet_link();
  return net::TransferModel(net::piii_866_host(link), link);
}

/// A 2-GD grid: gd0 holds machine 0 and the only client domain used by the
/// requests; gd1 holds machine 1 (remote).
grid::GridSystem two_gd_grid() {
  grid::GridSystemBuilder builder(grid::ActivityCatalog::standard());
  const auto gd0 = builder.add_grid_domain("home");
  const auto gd1 = builder.add_grid_domain("remote");
  builder.add_machine(gd0, "m-local");
  builder.add_machine(gd1, "m-remote");
  return builder.build();
}

grid::Request request_with(trust::TrustLevel rtl) {
  grid::Request req;
  req.id = 0;
  req.client_domain = 0;  // belongs to gd0
  req.activities = {0};
  req.client_rtl = rtl;
  req.resource_rtl = rtl;
  return req;
}

TEST(Staging, LocalStagingIsFree) {
  const grid::GridSystem grid = two_gd_grid();
  const auto req = request_with(trust::TrustLevel::kA);
  sched::TrustCostMatrix tc(1, 2, 0);
  const StagingCosts costs =
      compute_staging_costs(grid, {req}, {100.0}, tc, wan());
  EXPECT_EQ(costs.trust_adaptive.get(0, 0), 0.0);  // same GD
  EXPECT_EQ(costs.conservative.get(0, 0), 0.0);
  EXPECT_GT(costs.trust_adaptive.get(0, 1), 0.0);  // WAN hop
}

TEST(Staging, TrustCostZeroUsesRcpOtherwiseScp) {
  const grid::GridSystem grid = two_gd_grid();
  const auto req = request_with(trust::TrustLevel::kA);
  const net::TransferModel model = wan();
  const double rcp = model.transfer_time_s(Megabytes(100), net::Protocol::kRcp);
  const double scp = model.transfer_time_s(Megabytes(100), net::Protocol::kScp);

  sched::TrustCostMatrix trusted(1, 2, 0);
  const StagingCosts a =
      compute_staging_costs(grid, {req}, {100.0}, trusted, model);
  EXPECT_NEAR(a.trust_adaptive.get(0, 1), rcp, 1e-9);
  EXPECT_NEAR(a.conservative.get(0, 1), scp, 1e-9);

  sched::TrustCostMatrix untrusted(1, 2, 3);
  const StagingCosts b =
      compute_staging_costs(grid, {req}, {100.0}, untrusted, model);
  EXPECT_NEAR(b.trust_adaptive.get(0, 1), scp, 1e-9);
}

TEST(Staging, ZeroInputStagesNothing) {
  const grid::GridSystem grid = two_gd_grid();
  const auto req = request_with(trust::TrustLevel::kC);
  sched::TrustCostMatrix tc(1, 2, 2);
  const StagingCosts costs =
      compute_staging_costs(grid, {req}, {0.0}, tc, wan());
  EXPECT_EQ(costs.trust_adaptive.get(0, 1), 0.0);
  EXPECT_EQ(costs.conservative.get(0, 1), 0.0);
}

TEST(Staging, AttachChangesCostsPerPolicyPosture) {
  const grid::GridSystem grid = two_gd_grid();
  const auto req = request_with(trust::TrustLevel::kA);
  sched::CostMatrix eec(1, 2, 50.0);
  sched::TrustCostMatrix tc(1, 2, 0);
  const sched::SecurityCostModel model;
  const StagingCosts staging =
      compute_staging_costs(grid, {req}, {100.0}, tc, wan());

  sched::SchedulingProblem aware(eec, tc, sched::trust_aware_policy(), model);
  attach_staging(aware, staging);
  // TC = 0 -> aware sees and pays the rcp time on the remote machine.
  EXPECT_NEAR(aware.decision_cost(0, 1) - aware.decision_cost(0, 0),
              staging.trust_adaptive.get(0, 1), 1e-9);
  EXPECT_NEAR(aware.actual_cost(0, 1),
              50.0 + staging.trust_adaptive.get(0, 1), 1e-9);

  sched::SchedulingProblem unaware(eec, tc, sched::trust_unaware_policy(),
                                   model);
  attach_staging(unaware, staging);
  // The unaware mapper is oblivious to staging but pays scp.
  EXPECT_NEAR(unaware.decision_cost(0, 1), unaware.decision_cost(0, 0), 1e-9);
  EXPECT_NEAR(unaware.actual_cost(0, 1),
              50.0 * 1.5 + staging.conservative.get(0, 1), 1e-9);
}

TEST(Staging, HeuristicsHonorExtraCosts) {
  // Two machines, identical EEC; the remote one carries a huge staging
  // cost.  A trust-aware MCT must pick the local machine.
  const grid::GridSystem grid = two_gd_grid();
  const auto req = request_with(trust::TrustLevel::kA);
  sched::CostMatrix eec(1, 2, 50.0);
  sched::TrustCostMatrix tc(1, 2, 0);
  const StagingCosts staging =
      compute_staging_costs(grid, {req}, {1000.0}, tc, wan());
  sched::SchedulingProblem problem(eec, tc, sched::trust_aware_policy(),
                                   sched::SecurityCostModel{});
  attach_staging(problem, staging);
  auto mct = sched::make_mct();
  const sched::Schedule s = sched::run_immediate(problem, *mct);
  EXPECT_EQ(s.machine_of[0], 0u);
}

TEST(Staging, DrawInputSizesRespectsRange) {
  Rng rng(3);
  const auto sizes = draw_input_sizes(100, 10.0, 20.0, rng);
  for (const double s : sizes) {
    EXPECT_GE(s, 10.0);
    EXPECT_LT(s, 20.0);
  }
  EXPECT_THROW(draw_input_sizes(0, 1, 2, rng), PreconditionError);
  EXPECT_THROW(draw_input_sizes(5, -1, 2, rng), PreconditionError);
  EXPECT_THROW(draw_input_sizes(5, 3, 2, rng), PreconditionError);
}

TEST(Staging, Validation) {
  const grid::GridSystem grid = two_gd_grid();
  const auto req = request_with(trust::TrustLevel::kA);
  sched::TrustCostMatrix tc(1, 2, 0);
  EXPECT_THROW(compute_staging_costs(grid, {}, {}, tc, wan()),
               PreconditionError);
  EXPECT_THROW(compute_staging_costs(grid, {req}, {1.0, 2.0}, tc, wan()),
               PreconditionError);
  EXPECT_THROW(compute_staging_costs(grid, {req}, {-1.0}, tc, wan()),
               PreconditionError);
  sched::TrustCostMatrix wrong(2, 2, 0);
  EXPECT_THROW(compute_staging_costs(grid, {req}, {1.0}, wrong, wan()),
               PreconditionError);
  // set_extra_costs shape/value validation.
  sched::CostMatrix eec(1, 2, 50.0);
  sched::SchedulingProblem p(eec, tc, sched::trust_aware_policy(),
                             sched::SecurityCostModel{});
  EXPECT_THROW(p.set_extra_costs(sched::CostMatrix(2, 2, 0.0),
                                 sched::CostMatrix(1, 2, 0.0)),
               PreconditionError);
  EXPECT_THROW(p.set_extra_costs(sched::CostMatrix(1, 2, -1.0),
                                 sched::CostMatrix(1, 2, 0.0)),
               PreconditionError);
}

TEST(Staging, WithPolicyCarriesExtras) {
  const grid::GridSystem grid = two_gd_grid();
  const auto req = request_with(trust::TrustLevel::kA);
  sched::CostMatrix eec(1, 2, 50.0);
  sched::TrustCostMatrix tc(1, 2, 0);
  sched::SchedulingProblem p(eec, tc, sched::trust_aware_policy(),
                             sched::SecurityCostModel{});
  p.set_extra_costs(sched::CostMatrix(1, 2, 7.0), sched::CostMatrix(1, 2, 9.0));
  const sched::SchedulingProblem q =
      p.with_policy(sched::trust_aware_policy());
  EXPECT_NEAR(q.decision_cost(0, 0), 57.0, 1e-9);
  EXPECT_NEAR(q.actual_cost(0, 0), 59.0, 1e-9);
}

}  // namespace
}  // namespace gridtrust::sim
