// Tests for the SFI sandbox substrate: memory policies, MD5 (RFC 1321),
// the hotlist and log-structured-disk workloads, and the harness.
//
// Timing-based overhead percentages are asserted only loosely (this is a
// shared machine); the deterministic invariants — equal digests across
// policies, exact check counts, violations thrown — are asserted exactly.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sfi/harness.hpp"
#include "sfi/hotlist.hpp"
#include "sfi/lld.hpp"
#include "sfi/md5.hpp"
#include "sfi/sandbox.hpp"

namespace gridtrust::sfi {
namespace {

// ---------------------------------------------------------------- sandbox

template <typename T>
class MemoryPolicyTest : public ::testing::Test {};

using Policies = ::testing::Types<NativeMemory, MisfitMemory, SasiMemory>;
TYPED_TEST_SUITE(MemoryPolicyTest, Policies);

TYPED_TEST(MemoryPolicyTest, ByteRoundTrip) {
  TypeParam heap(64);
  heap.store8(3, 0xab);
  EXPECT_EQ(heap.load8(3), 0xab);
  EXPECT_EQ(heap.load8(4), 0x00);
  EXPECT_EQ(heap.size(), 64u);
}

TYPED_TEST(MemoryPolicyTest, WordRoundTrip) {
  TypeParam heap(64);
  heap.store32(8, 0xdeadbeefu);
  EXPECT_EQ(heap.load32(8), 0xdeadbeefu);
  // Little-endian byte view.
  EXPECT_EQ(heap.load8(8), 0xef);
  EXPECT_EQ(heap.load8(11), 0xde);
}

TEST(MisfitMemory, ThrowsOnOutOfBounds) {
  MisfitMemory heap(16);
  EXPECT_THROW(heap.load8(16), SandboxViolation);
  EXPECT_THROW(heap.store8(16, 1), SandboxViolation);
  EXPECT_THROW(heap.load32(13), SandboxViolation);  // 13+4 > 16
  EXPECT_NO_THROW(heap.load32(12));
}

TEST(MisfitMemory, CountsChecks) {
  MisfitMemory heap(16);
  EXPECT_EQ(heap.check_count(), 0u);
  heap.store8(0, 1);
  (void)heap.load8(0);
  (void)heap.load32(4);
  EXPECT_EQ(heap.check_count(), 3u);
}

TEST(SasiMemory, ThrowsOnOutOfBounds) {
  SasiMemory heap(100);  // region rounds up to 128
  EXPECT_THROW(heap.load8(100), SandboxViolation);   // logical bound
  EXPECT_THROW(heap.load8(127), SandboxViolation);   // in region, out of bound
  EXPECT_THROW(heap.load8(4096), SandboxViolation);  // segment escape
  EXPECT_NO_THROW(heap.load8(99));
}

TEST(SasiMemory, ThrowsOnMisalignedWordAccess) {
  SasiMemory heap(64);
  EXPECT_NO_THROW(heap.load32(8));
  EXPECT_THROW(heap.load32(9), SandboxViolation);
  EXPECT_THROW(heap.store32(2, 1), SandboxViolation);
  // Byte accesses have no alignment requirement.
  EXPECT_NO_THROW(heap.load8(9));
}

TEST(SasiMemory, CountsWriteBarriers) {
  SasiMemory heap(64);
  heap.store32(0, 1);
  heap.store8(5, 2);
  (void)heap.load32(0);
  EXPECT_EQ(heap.check_count(), 3u);
  EXPECT_EQ(heap.write_barriers(), 2u);
}

TEST(NativeMemory, ReportsZeroChecks) {
  NativeMemory heap(16);
  heap.store32(0, 7);
  (void)heap.load32(0);
  EXPECT_EQ(heap.check_count(), 0u);
}

TEST(Sandbox, ViolationMessageNamesTheAddress) {
  MisfitMemory heap(8);
  try {
    (void)heap.load8(42);
    FAIL() << "expected violation";
  } catch (const SandboxViolation& e) {
    EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
  }
}

// ---------------------------------------------------------------- MD5

TEST(Md5, Rfc1321TestVectors) {
  EXPECT_EQ(to_hex(md5("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(to_hex(md5("a")), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(to_hex(md5("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(to_hex(md5("message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(to_hex(md5("abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      to_hex(md5("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz012345"
                 "6789")),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(
      to_hex(md5("1234567890123456789012345678901234567890123456789012345678"
                 "9012345678901234567890")),
      "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, ExactBlockBoundaries) {
  // 55, 56, 63, 64, 65 bytes cross the padding edge cases.
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u, 128u}) {
    const std::string msg(len, 'x');
    const Md5Digest reference = md5(msg);
    NativeMemory heap(256);
    for (std::size_t i = 0; i < len; ++i) {
      heap.store8(i, static_cast<std::uint8_t>('x'));
    }
    EXPECT_EQ(md5_of_heap(heap, 0, len), reference) << len;
  }
}

TEST(Md5, HeapDigestsIdenticalAcrossPolicies) {
  const std::size_t len = 1000;
  Rng rng(3);
  std::vector<std::uint8_t> bytes(len);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));

  NativeMemory native(1024);
  MisfitMemory misfit(1024);
  SasiMemory sasi(1024);
  for (std::size_t i = 0; i < len; ++i) {
    native.store8(i, bytes[i]);
    misfit.store8(i, bytes[i]);
    sasi.store8(i, bytes[i]);
  }
  const Md5Digest reference = md5(bytes.data(), len);
  EXPECT_EQ(md5_of_heap(native, 0, len), reference);
  EXPECT_EQ(md5_of_heap(misfit, 0, len), reference);
  EXPECT_EQ(md5_of_heap(sasi, 0, len), reference);
  EXPECT_GT(misfit.check_count(), 0u);
  // SASI uses word loads on the aligned fast path too; both sandboxes must
  // have touched every block.
  EXPECT_GT(sasi.check_count(), 0u);
}

TEST(Md5, UnalignedStartFallsBackToBytePath) {
  NativeMemory heap(256);
  const std::string msg = "the quick brown fox jumps over the lazy dog again";
  for (std::size_t i = 0; i < msg.size(); ++i) {
    heap.store8(3 + i, static_cast<std::uint8_t>(msg[i]));
  }
  EXPECT_EQ(md5_of_heap(heap, 3, msg.size()), md5(msg));
}

// ---------------------------------------------------------------- hotlist

TEST(Hotlist, HotCountNeverExceedsCapacity) {
  NativeMemory heap(PageEvictionHotlist<NativeMemory>::heap_bytes(32));
  PageEvictionHotlist<NativeMemory> hotlist(heap, 32, 8);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    hotlist.access(rng.index(32));
    EXPECT_LE(hotlist.hot_count(), 8u);
  }
  EXPECT_EQ(hotlist.hot_count(), 8u);  // saturated after enough accesses
}

TEST(Hotlist, RepeatAccessKeepsPageInList) {
  NativeMemory heap(PageEvictionHotlist<NativeMemory>::heap_bytes(8));
  PageEvictionHotlist<NativeMemory> hotlist(heap, 8, 2);
  hotlist.access(5);
  hotlist.access(5);
  hotlist.access(5);
  EXPECT_EQ(hotlist.hot_count(), 1u);
}

TEST(Hotlist, EvictionDropsColdestPage) {
  NativeMemory heap(PageEvictionHotlist<NativeMemory>::heap_bytes(8));
  PageEvictionHotlist<NativeMemory> hotlist(heap, 8, 2);
  hotlist.access(0);
  hotlist.access(1);  // list: [1, 0]
  hotlist.access(2);  // evicts 0; list: [2, 1]
  EXPECT_EQ(hotlist.hot_count(), 2u);
  // Re-access 1 then 0: 0's insert evicts 2.
  hotlist.access(1);
  hotlist.access(0);
  EXPECT_EQ(hotlist.hot_count(), 2u);
}

TEST(Hotlist, ChecksumIdenticalAcrossPolicies) {
  const std::size_t pages = 64;
  const auto bytes = PageEvictionHotlist<NativeMemory>::heap_bytes(pages);
  NativeMemory native(bytes);
  MisfitMemory misfit(bytes);
  SasiMemory sasi(bytes);
  PageEvictionHotlist<NativeMemory> a(native, pages, 16);
  PageEvictionHotlist<MisfitMemory> b(misfit, pages, 16);
  PageEvictionHotlist<SasiMemory> c(sasi, pages, 16);
  Rng r1(9);
  Rng r2(9);
  Rng r3(9);
  const auto ca = a.run(2000, r1);
  const auto cb = b.run(2000, r2);
  const auto cc = c.run(2000, r3);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(ca, cc);
  EXPECT_GT(misfit.check_count(), 0u);
  EXPECT_EQ(misfit.check_count(), sasi.check_count());
}

TEST(Hotlist, Validation) {
  NativeMemory heap(PageEvictionHotlist<NativeMemory>::heap_bytes(4));
  EXPECT_THROW((PageEvictionHotlist<NativeMemory>(heap, 4, 0)),
               PreconditionError);
  EXPECT_THROW((PageEvictionHotlist<NativeMemory>(heap, 4, 5)),
               PreconditionError);
  NativeMemory small(64);
  EXPECT_THROW((PageEvictionHotlist<NativeMemory>(small, 4, 2)),
               PreconditionError);
  PageEvictionHotlist<NativeMemory> ok(heap, 4, 2);
  EXPECT_THROW(ok.access(4), PreconditionError);
}

// ---------------------------------------------------------------- lld

TEST(Lld, WriteThenReadIsStable) {
  NativeMemory heap(LogStructuredDisk<NativeMemory>::heap_bytes(16, 32));
  LogStructuredDisk<NativeMemory> disk(heap, 16, 32);
  EXPECT_EQ(disk.read(3), 0u);  // unwritten
  disk.write(3, 0x1234);
  const std::uint32_t digest = disk.read(3);
  EXPECT_NE(digest, 0u);
  EXPECT_EQ(disk.read(3), digest);  // reads are idempotent
  disk.write(3, 0x9999);
  EXPECT_NE(disk.read(3), digest);  // overwrite changes content
}

TEST(Lld, CleaningPreservesAllLiveBlocks) {
  NativeMemory heap(LogStructuredDisk<NativeMemory>::heap_bytes(8, 12));
  LogStructuredDisk<NativeMemory> disk(heap, 8, 12);
  std::vector<std::uint32_t> digests(8);
  for (std::size_t b = 0; b < 8; ++b) {
    disk.write(b, static_cast<std::uint32_t>(b * 77 + 1));
    digests[b] = disk.read(b);
  }
  // Force cleanings with repeated overwrites of block 0.
  for (int i = 0; i < 40; ++i) disk.write(0, static_cast<std::uint32_t>(i));
  EXPECT_GT(disk.cleanings(), 0u);
  for (std::size_t b = 1; b < 8; ++b) {
    EXPECT_EQ(disk.read(b), digests[b]) << "block " << b;
  }
}

TEST(Lld, DigestIdenticalAcrossPolicies) {
  const auto bytes = LogStructuredDisk<NativeMemory>::heap_bytes(32, 48);
  NativeMemory native(bytes);
  MisfitMemory misfit(bytes);
  SasiMemory sasi(bytes);
  LogStructuredDisk<NativeMemory> a(native, 32, 48);
  LogStructuredDisk<MisfitMemory> b(misfit, 32, 48);
  LogStructuredDisk<SasiMemory> c(sasi, 32, 48);
  Rng r1(21);
  Rng r2(21);
  Rng r3(21);
  const auto da = a.run(3000, r1);
  EXPECT_EQ(da, b.run(3000, r2));
  EXPECT_EQ(da, c.run(3000, r3));
  EXPECT_GT(a.cleanings(), 0u);
  EXPECT_EQ(a.cleanings(), b.cleanings());
}

TEST(Lld, Validation) {
  NativeMemory heap(LogStructuredDisk<NativeMemory>::heap_bytes(8, 12));
  EXPECT_THROW((LogStructuredDisk<NativeMemory>(heap, 8, 8)),
               PreconditionError);  // slots must exceed blocks
  NativeMemory small(64);
  EXPECT_THROW((LogStructuredDisk<NativeMemory>(small, 8, 12)),
               PreconditionError);
  LogStructuredDisk<NativeMemory> ok(heap, 8, 12);
  EXPECT_THROW(ok.write(8, 1), PreconditionError);
  EXPECT_THROW(ok.read(8), PreconditionError);
}

// ---------------------------------------------------------------- harness

TEST(Harness, WorkloadNames) {
  EXPECT_EQ(to_string(Workload::kHotlist), "page-eviction hotlist");
  EXPECT_EQ(to_string(Workload::kLld), "logical log-structured disk");
  EXPECT_EQ(to_string(Workload::kMd5), "MD5");
}

TEST(Harness, RunWorkloadReportsChecksOnlyForSandboxes) {
  const RunResult native = run_workload(Workload::kLld, "native", 1, 5, 1);
  const RunResult misfit = run_workload(Workload::kLld, "misfit", 1, 5, 1);
  EXPECT_EQ(native.checks, 0u);
  EXPECT_GT(misfit.checks, 0u);
  EXPECT_EQ(native.checksum, misfit.checksum);
  EXPECT_GT(native.seconds, 0.0);
  EXPECT_THROW(run_workload(Workload::kLld, "qemu", 1, 5, 1),
               PreconditionError);
}

TEST(Harness, MeasureOverheadsChecksumsMatchEverywhere) {
  const auto rows = measure_overheads(1, 3, 1);
  ASSERT_EQ(rows.size(), 3u);
  for (const OverheadRow& row : rows) {
    EXPECT_TRUE(row.checksums_match) << to_string(row.workload);
    EXPECT_GT(row.native_seconds, 0.0);
  }
}

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GRIDTRUST_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GRIDTRUST_UNDER_SANITIZER 1
#endif

TEST(Harness, SandboxingIsNotFree) {
#ifdef GRIDTRUST_UNDER_SANITIZER
  // Sanitizer instrumentation distorts the relative cost of the bounds
  // checks this test measures; the ratio assertion below flakes under it.
  // Checksum correctness still runs in the tests above.
  GTEST_SKIP() << "relative wall-time assertion is noise under sanitizers";
#endif
  // Loose, machine-independent assertion: summed over the two memory-bound
  // workloads, each sandbox must cost something.
  const auto rows = measure_overheads(1, 3, 3);
  double misfit_total = 0.0;
  double sasi_total = 0.0;
  for (const OverheadRow& row : rows) {
    if (row.workload == Workload::kMd5) continue;
    misfit_total += row.misfit_overhead_pct;
    sasi_total += row.sasi_overhead_pct;
  }
  EXPECT_GT(misfit_total, 10.0);
  EXPECT_GT(sasi_total, misfit_total);
}

TEST(Harness, TableListsAllWorkloadsAndPaperColumns) {
  const auto rows = measure_overheads(1, 3, 1);
  const TextTable table = sfi_table(rows);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("page-eviction hotlist"), std::string::npos);
  EXPECT_NE(out.find("MD5"), std::string::npos);
  EXPECT_NE(out.find("137%"), std::string::npos);  // paper reference column
  EXPECT_NE(out.find("264%"), std::string::npos);
  EXPECT_EQ(table.row_count(), 3u);
}

}  // namespace
}  // namespace gridtrust::sfi
