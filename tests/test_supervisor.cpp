// Crash-tolerant shard supervisor: the subprocess primitives (frames,
// classified exits, poll multiplexing) and the supervisor itself —
// byte-identical merges across worker counts, SIGKILL recovery via shard
// journals, heartbeat-timeout and nonzero-exit triage, and the
// deterministic shard-merge precedence rules.
//
// Deliberately ThreadPool-free: these tests fork, and forking a process
// that owns sanitizer-instrumented threads is undefined under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/faults.hpp"
#include "common/error.hpp"
#include "common/retry.hpp"
#include "common/subprocess.hpp"
#include "lab/engine.hpp"
#include "lab/journal.hpp"
#include "lab/manifest.hpp"
#include "lab/spec.hpp"
#include "lab/supervisor.hpp"
#include "obs/report.hpp"

namespace gridtrust::lab {
namespace {

/// Same synthetic sweep shape as test_lab's: 6 cells x 4 reps, results a
/// pure function of (cell, rep_seed), no simulator.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.name = "tiny";
  spec.title = "synthetic supervisor sweep";
  spec.axes = {{"alpha", {1, 2, 3}}, {"mode", {"fast", "slow"}}};
  spec.replications = 4;
  spec.seed = 99;
  spec.run = [](const Cell& cell, std::uint64_t rep_seed) {
    obs::RunReport report;
    report.set("value", cell.number("alpha") * 10.0 +
                            static_cast<double>(rep_seed % 1000) / 1000.0);
    report.set("mode_len", static_cast<double>(cell.text("mode").size()));
    return report;
  };
  spec.finalize = [](const Cell& cell, AggregateSet& aggregate) {
    aggregate.set_derived("alpha_echo", cell.number("alpha"));
  };
  return spec;
}

std::string temp_dir(const std::string& leaf) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("gridtrust_sup_" + leaf);
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Drains a child's channel until EOF, collecting every frame.
std::vector<std::string> drain_until_eof(ChildProcess& child) {
  FrameReader reader(child.channel_fd());
  std::vector<std::string> frames;
  while (true) {
    const std::vector<std::size_t> ready =
        wait_readable({child.channel_fd()}, 1000);
    if (!reader.drain(frames)) break;
    (void)ready;
  }
  return frames;
}

// ---------------------------------------------------------------------------
// Subprocess primitives
// ---------------------------------------------------------------------------

TEST(SubprocessTest, FramesRoundTripAcrossTheProcessBoundary) {
  ChildProcess child = ChildProcess::spawn([](const FrameWriter& writer) {
    writer.send("hello");
    writer.send("");  // zero-length payloads are legal frames
    writer.send(std::string(100000, 'x') + std::string("\n\0tail", 6));
    return 0;
  });
  const std::vector<std::string> frames = drain_until_eof(child);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "hello");
  EXPECT_EQ(frames[1], "");
  EXPECT_EQ(frames[2].size(), 100000u + 6u);
  EXPECT_EQ(frames[2].substr(100000), std::string("\n\0tail", 6));
  const ExitStatus exit = child.wait_exit();
  EXPECT_FALSE(exit.signaled);
  EXPECT_EQ(exit.code, 0);
}

TEST(SubprocessTest, ExitCodesRoundTripThroughTheErrorTaxonomy) {
  for (const ErrorClass cls :
       {ErrorClass::kPrecondition, ErrorClass::kInvariant,
        ErrorClass::kResource, ErrorClass::kTimeout, ErrorClass::kUnknown}) {
    ExitStatus status;
    status.signaled = false;
    status.code = exit_code_for(cls);
    EXPECT_EQ(classify_exit(status), cls) << to_string(cls);
  }
  // A signal death is always a transient resource loss (the work itself
  // is blameless), and an unclassified nonzero exit is unknown.
  ExitStatus killed;
  killed.signaled = true;
  killed.code = SIGKILL;
  EXPECT_EQ(classify_exit(killed), ErrorClass::kResource);
  ExitStatus plain;
  plain.signaled = false;
  plain.code = 1;
  EXPECT_EQ(classify_exit(plain), ErrorClass::kUnknown);
}

TEST(SubprocessTest, ThrownChildErrorsBecomeClassifiedExits) {
  ChildProcess child = ChildProcess::spawn([](const FrameWriter&) -> int {
    GT_REQUIRE(false, "scripted precondition failure");
    return 0;
  });
  const ExitStatus exit = child.wait_exit();
  EXPECT_FALSE(exit.signaled);
  EXPECT_EQ(exit.code, exit_code_for(ErrorClass::kPrecondition));
  EXPECT_EQ(classify_exit(exit), ErrorClass::kPrecondition);
  EXPECT_FALSE(is_transient(classify_exit(exit)));
}

TEST(SubprocessTest, KilledChildReportsTheSignalAndClassifiesTransient) {
  ChildProcess child = ChildProcess::spawn([](const FrameWriter& writer) {
    writer.send("alive");
    std::this_thread::sleep_for(std::chrono::seconds(60));
    return 0;
  });
  // Wait for the sign of life so the kill races nothing.
  FrameReader reader(child.channel_fd());
  std::vector<std::string> frames;
  while (frames.empty()) {
    (void)wait_readable({child.channel_fd()}, 1000);
    ASSERT_TRUE(reader.drain(frames)) << "child died before signaling";
  }
  child.send_signal(SIGKILL);
  const ExitStatus exit = child.wait_exit();
  EXPECT_TRUE(exit.signaled);
  EXPECT_EQ(exit.code, SIGKILL);
  EXPECT_EQ(classify_exit(exit), ErrorClass::kResource);
  EXPECT_NE(exit.describe().find("signal 9"), std::string::npos);
}

TEST(SubprocessTest, WaitReadableHonorsTimeoutWithNothingToWatch) {
  const double t0 = monotonic_seconds();
  const std::vector<std::size_t> ready = wait_readable({-1, -1}, 50);
  EXPECT_TRUE(ready.empty());
  EXPECT_GE(monotonic_seconds() - t0, 0.04);
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

TEST(SupervisorTest, RejectsInvalidOptions) {
  const SweepSpec spec = tiny_spec();
  const EngineOptions engine;
  SupervisorOptions bad;
  bad.workers = 0;
  bad.shard_dir = temp_dir("reject");
  EXPECT_THROW(run_supervised(spec, engine, bad), PreconditionError);

  SupervisorOptions no_dir;
  no_dir.workers = 2;
  EXPECT_THROW(run_supervised(spec, engine, no_dir), PreconditionError);

  SupervisorOptions plan_out_of_range;
  plan_out_of_range.workers = 2;
  plan_out_of_range.shard_dir = temp_dir("reject2");
  chaos::WorkerFaultPlan plan;
  plan.worker = 5;
  plan_out_of_range.fault_plans.push_back(plan);
  EXPECT_THROW(run_supervised(spec, engine, plan_out_of_range),
               PreconditionError);

  EngineOptions journaled;
  journaled.journal_path = temp_dir("reject3") + "/j.journal";
  SupervisorOptions ok;
  ok.workers = 2;
  ok.shard_dir = temp_dir("reject4");
  EXPECT_THROW(run_supervised(spec, journaled, ok), PreconditionError);
}

TEST(SupervisorTest, FaultPlanValidationRejectsZeroFields) {
  chaos::WorkerFaultPlan plan;
  chaos::validate_plan(plan);  // defaults are valid
  plan.after_cells = 0;
  EXPECT_THROW(chaos::validate_plan(plan), PreconditionError);
  plan.after_cells = 1;
  plan.signal = 0;
  EXPECT_THROW(chaos::validate_plan(plan), PreconditionError);
  plan.signal = 9;
  plan.incarnations = 0;
  EXPECT_THROW(chaos::validate_plan(plan), PreconditionError);
}

TEST(SupervisorTest, SupervisedRunIsByteIdenticalToSingleProcess) {
  const SweepSpec spec = tiny_spec();
  EngineOptions serial;
  serial.jobs = 1;
  const std::string reference = to_json(run_sweep(spec, serial).manifest);

  SupervisorOptions sup;
  sup.workers = 3;
  sup.shard_dir = temp_dir("identical");
  const SupervisorRun run = run_supervised(spec, EngineOptions{}, sup);
  EXPECT_EQ(to_json(run.manifest), reference);
  EXPECT_EQ(run.manifest.outcome, RunOutcome::kComplete);
  EXPECT_EQ(run.cells, 6u);
  EXPECT_EQ(run.cells_failed, 0u);
  EXPECT_EQ(run.counters.workers_spawned, 3u);
  EXPECT_EQ(run.counters.workers_lost, 0u);
  EXPECT_EQ(run.counters.workers_respawned, 0u);
  EXPECT_EQ(run.counters.cells_reassigned, 0u);
}

TEST(SupervisorTest, SigkilledWorkerResumesFromItsShardJournalByteIdentical) {
  const SweepSpec spec = tiny_spec();
  EngineOptions serial;
  serial.jobs = 1;
  const std::string reference = to_json(run_sweep(spec, serial).manifest);

  // Worker 0 (shard {0, 3}) kills itself with SIGKILL right after its
  // first cell is journaled; the replacement must resume from the shard
  // journal and recompute only cell 3.
  SupervisorOptions sup;
  sup.workers = 3;
  sup.shard_dir = temp_dir("sigkill");
  sup.respawn_backoff.backoff_initial_ms = 1;
  chaos::WorkerFaultPlan plan;
  plan.worker = 0;
  plan.after_cells = 1;
  plan.signal = SIGKILL;
  plan.incarnations = 1;
  sup.fault_plans.push_back(plan);

  const SupervisorRun run = run_supervised(spec, EngineOptions{}, sup);
  EXPECT_EQ(to_json(run.manifest), reference);
  EXPECT_EQ(run.manifest.outcome, RunOutcome::kComplete);
  EXPECT_EQ(run.counters.workers_spawned, 4u);
  EXPECT_EQ(run.counters.workers_lost, 1u);
  EXPECT_EQ(run.counters.workers_respawned, 1u);
  // One cell of the shard was journaled before the kill, so exactly the
  // other one is handed to the replacement.
  EXPECT_EQ(run.counters.cells_reassigned, 1u);
}

TEST(SupervisorTest, HeartbeatTimeoutTriagesAHungWorker) {
  // Cell 5 (alpha=3 mode=slow, owned by worker 2) hangs forever; every
  // other cell is instant.  With respawns disabled the supervisor must
  // SIGKILL the silent worker and surrender cell 5 as a timeout failure.
  SweepSpec spec = tiny_spec();
  spec.run = [](const Cell& cell, std::uint64_t rep_seed) {
    if (cell.number("alpha") == 3 && cell.text("mode") == "slow") {
      std::this_thread::sleep_for(std::chrono::seconds(30));
    }
    obs::RunReport report;
    report.set("value", cell.number("alpha") * 10.0 +
                            static_cast<double>(rep_seed % 1000) / 1000.0);
    report.set("mode_len", static_cast<double>(cell.text("mode").size()));
    return report;
  };

  EngineOptions engine;
  engine.failure_budget_pct = 100.0;
  SupervisorOptions sup;
  sup.workers = 3;
  sup.shard_dir = temp_dir("heartbeat");
  sup.heartbeat_interval_s = 0.01;
  sup.heartbeat_timeout_s = 1.0;
  sup.max_respawns = 0;

  const SupervisorRun run = run_supervised(spec, engine, sup);
  EXPECT_GE(run.counters.heartbeats_missed, 1u);
  EXPECT_EQ(run.counters.workers_lost, 1u);
  EXPECT_EQ(run.counters.workers_respawned, 0u);
  EXPECT_EQ(run.manifest.outcome, RunOutcome::kPartial);
  EXPECT_EQ(run.cells_failed, 1u);
  ASSERT_EQ(run.manifest.cells.size(), 6u);
  const ManifestCell& hung = run.manifest.cells[5];
  EXPECT_EQ(hung.status, CellStatus::kFailed);
  ASSERT_EQ(hung.failures.size(), 1u);
  EXPECT_EQ(hung.failures[0].error_class, ErrorClass::kTimeout);
  EXPECT_NE(hung.failures[0].message.find("no heartbeat"), std::string::npos);
  // The hung worker's *other* cell completed and journaled before the hang.
  EXPECT_EQ(run.manifest.cells[2].status, CellStatus::kOk);
}

TEST(SupervisorTest, NonzeroExitTriagesDeterministicallyWithoutRespawn) {
  // A corrupt shard journal makes worker 0's resume throw a
  // PreconditionError, which travels back as classified exit code
  // 64 + precondition.  Deterministic class: no respawn is attempted even
  // though the budget would allow three.
  const SweepSpec spec = tiny_spec();
  const std::string shard_dir = temp_dir("nonzero");
  std::filesystem::create_directories(shard_dir);
  {
    std::ofstream out(shard_dir + "/shard-0.journal");
    out << "this is not a journal header\n";
  }

  EngineOptions engine;
  engine.failure_budget_pct = 50.0;
  SupervisorOptions sup;
  sup.workers = 3;
  sup.shard_dir = shard_dir;
  sup.max_respawns = 3;

  const SupervisorRun run = run_supervised(spec, engine, sup);
  EXPECT_EQ(run.counters.workers_spawned, 3u);
  EXPECT_EQ(run.counters.workers_lost, 1u);
  EXPECT_EQ(run.counters.workers_respawned, 0u);
  EXPECT_EQ(run.manifest.outcome, RunOutcome::kPartial);
  EXPECT_EQ(run.cells_failed, 2u);  // worker 0's shard: cells 0 and 3
  for (const std::size_t index : {std::size_t{0}, std::size_t{3}}) {
    const ManifestCell& cell = run.manifest.cells[index];
    EXPECT_EQ(cell.status, CellStatus::kFailed);
    ASSERT_EQ(cell.failures.size(), 1u);
    EXPECT_EQ(cell.failures[0].error_class, ErrorClass::kPrecondition);
    EXPECT_EQ(cell.failures[0].attempts, 1u);
    EXPECT_NE(cell.failures[0].message.find("worker 0 died"),
              std::string::npos);
    EXPECT_NE(cell.failures[0].message.find("exit 64"), std::string::npos);
  }
  // The healthy shards were unaffected.
  EXPECT_EQ(run.manifest.cells[1].status, CellStatus::kOk);
  EXPECT_EQ(run.manifest.cells[2].status, CellStatus::kOk);
}

TEST(SupervisorTest, ExceededFailureBudgetThrowsAfterSalvagingTheMerge) {
  const SweepSpec spec = tiny_spec();
  const std::string shard_dir = temp_dir("budget");
  std::filesystem::create_directories(shard_dir);
  {
    std::ofstream out(shard_dir + "/shard-0.journal");
    out << "garbage\n";
  }
  SupervisorOptions sup;
  sup.workers = 3;
  sup.shard_dir = shard_dir;
  sup.max_respawns = 0;
  try {
    (void)run_supervised(spec, EngineOptions{}, sup);  // default budget: 0%
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("over failure budget"),
              std::string::npos);
  }
}

TEST(SupervisorTest, CancelledRunInterruptsAndSkipsRemainingCells) {
  const SweepSpec spec = tiny_spec();
  EngineOptions engine;
  engine.unit_sleep_ms = 50;  // 200 ms per cell: cancel lands mid-shard
  std::atomic<bool> cancel{true};
  SupervisorOptions sup;
  sup.workers = 2;
  sup.shard_dir = temp_dir("cancel");
  sup.cancel = &cancel;

  const SupervisorRun run = run_supervised(spec, engine, sup);
  EXPECT_EQ(run.manifest.outcome, RunOutcome::kInterrupted);
  EXPECT_EQ(run.counters.workers_lost, 0u);
  bool any_skipped = false;
  for (const ManifestCell& cell : run.manifest.cells) {
    EXPECT_NE(cell.status, CellStatus::kFailed);
    any_skipped = any_skipped || cell.status == CellStatus::kSkipped;
  }
  EXPECT_TRUE(any_skipped);
}

TEST(SupervisorTest, MergePrefersOkRecordsAndLastInputWins) {
  const SweepSpec spec = tiny_spec();
  EngineOptions serial;
  serial.jobs = 1;
  const Manifest reference = run_sweep(spec, serial).manifest;

  const auto header = [&] {
    Journal journal;
    journal.spec = reference.spec;
    journal.spec_hash = reference.spec_hash;
    journal.seed = reference.seed;
    journal.replications = reference.replications;
    return journal;
  };
  ManifestCell ok0 = reference.cells[0];
  ManifestCell ok0_newer = ok0;
  ok0_newer.metrics[0].second.mean += 1.0;
  ManifestCell failed0 = ok0;
  failed0.status = CellStatus::kFailed;
  UnitFailure failure;
  failure.rep = 0;
  failure.seed = reference.seed;
  failure.error_class = ErrorClass::kUnknown;
  failure.message = "stale incarnation";
  failed0.failures.push_back(failure);

  // Two shards journaled the same cell hash (a reassigned cell computed by
  // both the dead incarnation and its replacement): the later journal wins,
  // and a stale failed record can never demote the ok one.
  Journal first = header();
  first.cells = {failed0, ok0};
  Journal second = header();
  second.cells = {ok0_newer};
  const ShardMerge merge = merge_shards(spec, reference.seed,
                                        reference.replications,
                                        {first, second}, {failed0});
  EXPECT_EQ(merge.manifest.cells[0].status, CellStatus::kOk);
  EXPECT_EQ(merge.manifest.cells[0].metrics[0].second.mean,
            ok0_newer.metrics[0].second.mean);
  EXPECT_TRUE(merge.manifest.cells[0].failures.empty());
  // Every other grid cell is missing and marked skipped with identity.
  EXPECT_EQ(merge.missing.size(), 5u);
  EXPECT_EQ(merge.manifest.cells[3].status, CellStatus::kSkipped);
  EXPECT_EQ(merge.manifest.cells[3].param_hash, reference.cells[3].param_hash);
}

TEST(SupervisorTest, MergeDropsForeignJournalsAndForeignCells) {
  const SweepSpec spec = tiny_spec();
  EngineOptions serial;
  serial.jobs = 1;
  const Manifest reference = run_sweep(spec, serial).manifest;

  Journal foreign;
  foreign.spec = "someone-else";
  foreign.spec_hash = "deadbeefdeadbeef";
  foreign.seed = reference.seed;
  foreign.replications = reference.replications;
  foreign.cells = {reference.cells[1]};

  // A streamed record whose param_hash does not match its claimed index
  // (e.g. a journal replayed against an edited grid) must be dropped.
  ManifestCell mismatched = reference.cells[0];
  mismatched.index = 2;

  const ShardMerge merge =
      merge_shards(spec, reference.seed, reference.replications, {foreign},
                   {mismatched});
  EXPECT_EQ(merge.missing.size(), 6u);
  for (const ManifestCell& cell : merge.manifest.cells) {
    EXPECT_EQ(cell.status, CellStatus::kSkipped);
  }
}

TEST(SupervisorTest, CountersSurfaceAsLabSupervisorReportEntries) {
  SupervisorCounters counters;
  counters.workers_spawned = 5;
  counters.workers_lost = 2;
  counters.workers_respawned = 1;
  counters.cells_reassigned = 3;
  counters.heartbeats_missed = 2;
  obs::RunReport report;
  counters.to_report(report);
  EXPECT_EQ(report.get("lab.supervisor.workers_spawned"), 5.0);
  EXPECT_EQ(report.get("lab.supervisor.workers_lost"), 2.0);
  EXPECT_EQ(report.get("lab.supervisor.workers_respawned"), 1.0);
  EXPECT_EQ(report.get("lab.supervisor.cells_reassigned"), 3.0);
  EXPECT_EQ(report.get("lab.supervisor.heartbeats_missed"), 2.0);
}

}  // namespace
}  // namespace gridtrust::lab
