// Conformance suite for the pluggable reputation backends: the interface
// contract of trust/reputation_policy.hpp over every registered backend,
// the registry's resolution rules, the purging decorator's filter, and the
// regression pinning the default "gamma" backend to the committed Table 4
// baseline manifest byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "common/error.hpp"
#include "common/fs.hpp"
#include "common/rng.hpp"
#include "grid/grid_system.hpp"
#include "lab/catalog.hpp"
#include "lab/engine.hpp"
#include "lab/manifest.hpp"
#include "sched/problem.hpp"
#include "sim/scenario_builder.hpp"
#include "trust/agents.hpp"
#include "trust/gamma_policy.hpp"
#include "trust/reputation_registry.hpp"
#include "trust/trust_engine.hpp"
#include "workload/request_gen.hpp"

namespace gridtrust::trust {
namespace {

ReputationParams params_for(std::size_t entities, std::size_t contexts) {
  ReputationParams params;
  params.entities = entities;
  params.contexts = contexts;
  return params;
}

/// Every backend the tournament fields, including one composite.
const std::vector<std::string>& all_backends() {
  static const std::vector<std::string> names = {"gamma", "beta", "fuzzy",
                                                 "purge:gamma"};
  return names;
}

/// A small deterministic transaction stream over `entities` entities: a
/// fixed scoring pattern, strictly increasing times.
std::vector<Transaction> fixed_stream(std::size_t entities) {
  std::vector<Transaction> stream;
  double t = 0.0;
  for (int pass = 0; pass < 4; ++pass) {
    for (EntityId a = 0; a < entities; ++a) {
      for (EntityId b = 0; b < entities; ++b) {
        if (a == b) continue;
        t += 1.0;
        const double score =
            1.0 + static_cast<double>((a * 7 + b * 3 + pass) % 11) * 0.5;
        stream.push_back({a, b, 0, t, std::min(score, 6.0)});
      }
    }
  }
  return stream;
}

// ------------------------------------------------------------- registry

TEST(ReputationRegistry, ListsBuiltinsSorted) {
  const std::vector<std::string> names = reputation_backend_names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* builtin : {"beta", "fuzzy", "gamma"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end())
        << builtin;
  }
}

TEST(ReputationRegistry, ResolvesCompositesRecursively) {
  EXPECT_TRUE(reputation_backend_exists("gamma"));
  EXPECT_TRUE(reputation_backend_exists("purge"));
  EXPECT_TRUE(reputation_backend_exists("purge:beta"));
  EXPECT_TRUE(reputation_backend_exists("purge:purge:fuzzy"));
  EXPECT_FALSE(reputation_backend_exists("nope"));
  EXPECT_FALSE(reputation_backend_exists("purge:nope"));

  const auto params = params_for(4, 1);
  EXPECT_EQ(make_reputation_policy("purge", params)->name(), "purge:gamma");
  EXPECT_EQ(make_reputation_policy("purge:fuzzy", params)->name(),
            "purge:fuzzy");
  EXPECT_EQ(make_reputation_policy("purge:purge:beta", params)->name(),
            "purge:purge:beta");
  EXPECT_THROW((void)make_reputation_policy("nope", params),
               PreconditionError);
}

TEST(ReputationRegistry, PurgeCompositesStackUpToTheDepthCeiling) {
  const auto params = params_for(4, 1);
  EXPECT_EQ(make_reputation_policy("purge:purge:gamma", params)->name(),
            "purge:purge:gamma");
  EXPECT_EQ(
      make_reputation_policy("purge:purge:purge:purge:beta", params)->name(),
      "purge:purge:purge:purge:beta");
  // Legacy shorthand: a trailing bare "purge" decorates the default gamma.
  EXPECT_EQ(make_reputation_policy("purge:purge", params)->name(),
            "purge:purge:gamma");
  EXPECT_TRUE(reputation_backend_exists("purge:purge:purge:purge:gamma"));
}

TEST(ReputationRegistry, RejectsOverDeepPurgeComposites) {
  const auto params = params_for(4, 1);
  const std::string deep = "purge:purge:purge:purge:purge:gamma";  // 5 layers
  EXPECT_FALSE(reputation_backend_exists(deep));
  try {
    (void)make_reputation_policy(deep, params);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("nested too deeply"),
              std::string::npos)
        << e.what();
  }
  // A dangling prefix names no base backend at all.
  EXPECT_FALSE(reputation_backend_exists("purge:"));
  EXPECT_THROW((void)make_reputation_policy("purge:", params),
               PreconditionError);
  // Scenario validation rejects the over-deep name before any run starts.
  EXPECT_THROW((void)sim::ScenarioBuilder()
                   .tasks(4)
                   .heuristic("mct")
                   .with_reputation_backend(deep)
                   .build(),
               PreconditionError);
}

TEST(ReputationRegistry, SetOverrideParsesDottedNumericAssignments) {
  ReputationBackendConfig config;
  config.name = "purge:gamma";
  config.set_override("purge.deviation_threshold=2.5");
  config.set_override("gamma.default_score=3");
  EXPECT_EQ(config.params.at("purge.deviation_threshold"), 2.5);
  EXPECT_EQ(config.params.at("gamma.default_score"), 3.0);
}

TEST(ReputationRegistry, SetOverrideRejectsMalformedAssignments) {
  ReputationBackendConfig config;
  try {
    config.set_override("gamma.default_score");  // no '='
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("expected key=value"),
              std::string::npos)
        << e.what();
  }
  try {
    config.set_override("gamma.default_score=fast");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("is not a number"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(config.set_override("=1.5"), PreconditionError);
  // Trailing junk after a valid numeric prefix is rejected too.
  EXPECT_THROW(config.set_override("gamma.alpha=1.5x"), PreconditionError);
  EXPECT_TRUE(config.params.empty());  // failed overrides leave no residue
}

TEST(ReputationRegistry, UnknownOverrideKeyIsRejectedAtConstruction) {
  ReputationBackendConfig config;
  config.name = "gamma";
  config.set_override("bogus.key=1");  // parses fine; key checked later
  try {
    (void)make_reputation_policy(config, TrustEngineConfig{}, 3, 1);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(
        std::string(e.what()).find("unknown reputation backend parameter"),
        std::string::npos)
        << e.what();
  }
}

TEST(ReputationRegistry, RejectsDuplicateAndReservedRegistrations) {
  EXPECT_THROW(register_reputation_backend(
                   "gamma",
                   [](const ReputationParams&) {
                     return std::unique_ptr<ReputationPolicy>();
                   }),
               PreconditionError);
  EXPECT_THROW(register_reputation_backend(
                   "purge:custom",
                   [](const ReputationParams&) {
                     return std::unique_ptr<ReputationPolicy>();
                   }),
               PreconditionError);
}

TEST(ReputationRegistry, AcceptsThirdPartyBackends) {
  register_reputation_backend("test_gamma_alias",
                              [](const ReputationParams& params) {
                                return std::make_unique<GammaReputationPolicy>(
                                    params.gamma, params.entities,
                                    params.contexts);
                              });
  EXPECT_TRUE(reputation_backend_exists("test_gamma_alias"));
  EXPECT_TRUE(reputation_backend_exists("purge:test_gamma_alias"));
  const auto policy =
      make_reputation_policy("test_gamma_alias", params_for(3, 1));
  EXPECT_EQ(policy->name(), "gamma");  // alias constructs the gamma policy
}

TEST(ReputationRegistry, BackendConfigAppliesOverrides) {
  ReputationBackendConfig config;
  EXPECT_TRUE(config.is_default());
  config.name = "gamma";
  config.params = {{"gamma.default_score", 2.5}};
  EXPECT_FALSE(config.is_default());
  const auto policy =
      make_reputation_policy(config, TrustEngineConfig{}, 3, 1);
  EXPECT_EQ(policy->stranger_default(), 2.5);

  config.params = {{"no.such.knob", 1.0}};
  EXPECT_THROW((void)make_reputation_policy(config, TrustEngineConfig{}, 3, 1),
               PreconditionError);
}

TEST(ReputationRegistry, PurgeOverridesReachTheDecorator) {
  ReputationBackendConfig config;
  config.name = "purge:gamma";
  config.params = {{"purge.min_consensus", 1.0},
                   {"purge.deviation_threshold", 0.5}};
  const auto policy =
      make_reputation_policy(config, TrustEngineConfig{}, 4, 1);
  // Consensus rests on a single report; the deviating second one is purged.
  policy->record_recommendation({1, 0, 0, 1.0, 5.0});
  policy->record_recommendation({2, 0, 0, 2.0, 1.0});
  const auto counters = policy->counters();
  ASSERT_GE(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "purged_recommendations");
  EXPECT_EQ(counters[0].second, 1u);
}

// ---------------------------------------------------------- conformance

class BackendConformance : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::ValuesIn(all_backends()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':') c = '_';
                           }
                           return name;
                         });

TEST_P(BackendConformance, ReportsItsRegistryNameAndShape) {
  const auto policy = make_reputation_policy(GetParam(), params_for(5, 2));
  EXPECT_EQ(policy->name(), GetParam());
  EXPECT_EQ(policy->entity_count(), 5u);
  EXPECT_EQ(policy->context_count(), 2u);
}

TEST_P(BackendConformance, StrangersEvaluateToTheDocumentedDefault) {
  const auto policy = make_reputation_policy(GetParam(), params_for(4, 1));
  const double d = policy->stranger_default();
  EXPECT_GE(d, 1.0);
  EXPECT_LE(d, 6.0);
  EXPECT_EQ(policy->evaluate(0, 1, 0, 10.0), d);
  EXPECT_FALSE(policy->direct_component(0, 1, 0, 10.0).has_value());
  EXPECT_EQ(policy->observation_count(0, 1, 0), 0u);
}

TEST_P(BackendConformance, ReplaysDeterministically) {
  const auto first = make_reputation_policy(GetParam(), params_for(5, 1));
  const auto second = make_reputation_policy(GetParam(), params_for(5, 1));
  const auto stream = fixed_stream(5);
  for (const Transaction& tx : stream) {
    first->record_transaction(tx);
    second->record_transaction(tx);
  }
  const double now = stream.back().time + 1.0;
  for (EntityId x = 0; x < 5; ++x) {
    for (EntityId y = 0; y < 5; ++y) {
      if (x == y) continue;
      const double a = first->evaluate(x, y, 0, now);
      EXPECT_EQ(a, second->evaluate(x, y, 0, now));
      EXPECT_GE(a, 1.0);
      EXPECT_LE(a, 6.0);
      // Repeated evaluation is side-effect free (counters aside).
      EXPECT_EQ(a, first->evaluate(x, y, 0, now));
    }
  }
  EXPECT_EQ(first->transaction_count(), second->transaction_count());
}

TEST_P(BackendConformance, ForgetResetsTheEntityToStranger) {
  const auto policy = make_reputation_policy(GetParam(), params_for(4, 1));
  for (const Transaction& tx : fixed_stream(4)) {
    policy->record_transaction(tx);
  }
  const double now = 100.0;
  ASSERT_NE(policy->evaluate(0, 1, 0, now), policy->stranger_default());
  EXPECT_GT(policy->forget(1), 0u);
  EXPECT_EQ(policy->evaluate(0, 1, 0, now), policy->stranger_default());
  EXPECT_EQ(policy->observation_count(0, 1, 0), 0u);
  // Unrelated pairs keep their evidence.
  EXPECT_GT(policy->observation_count(0, 2, 0), 0u);
}

TEST_P(BackendConformance, CountsDirectedObservations) {
  const auto policy = make_reputation_policy(GetParam(), params_for(3, 1));
  policy->record_transaction({0, 1, 0, 1.0, 4.0});
  policy->record_transaction({0, 1, 0, 2.0, 4.5});
  policy->record_transaction({1, 0, 0, 3.0, 3.0});
  EXPECT_EQ(policy->observation_count(0, 1, 0), 2u);
  EXPECT_EQ(policy->observation_count(1, 0, 0), 1u);
  EXPECT_EQ(policy->observation_count(2, 0, 0), 0u);
  EXPECT_EQ(policy->transaction_count(), 3u);
}

TEST_P(BackendConformance, RejectsTimeTravel) {
  const auto policy = make_reputation_policy(GetParam(), params_for(3, 1));
  policy->record_transaction({0, 1, 0, 10.0, 4.0});
  EXPECT_THROW(policy->record_transaction({0, 1, 0, 5.0, 4.0}),
               PreconditionError);
}

TEST_P(BackendConformance, CountersAreNamedAndMonotone) {
  const auto policy = make_reputation_policy(GetParam(), params_for(3, 1));
  policy->record_transaction({0, 1, 0, 1.0, 4.0});
  (void)policy->evaluate(0, 1, 0, 2.0);
  const auto counters = policy->counters();
  ASSERT_FALSE(counters.empty());
  for (const auto& [name, value] : counters) {
    EXPECT_FALSE(name.empty());
  }
  obs::RunReport report;
  policy->counters_to_report(report);
  const std::string prefix = "trust." + policy->name() + ".";
  EXPECT_TRUE(report.has(prefix + counters.front().first));
}

TEST(BackendConformancePerStream,
     ReputationComponentExcludesTheEvaluator) {
  // Pooled-evidence beta cannot attribute records to recommenders, so the
  // evaluator-exclusion clause binds the per-stream backends only.
  for (const std::string& name : {"gamma", "fuzzy", "purge:gamma"}) {
    const auto policy = make_reputation_policy(name, params_for(4, 1));
    // Entity 2 is the sole holder of evidence about entity 1.
    policy->record_transaction({2, 1, 0, 1.0, 5.0});
    EXPECT_TRUE(policy->reputation_component(0, 1, 0, 2.0).has_value())
        << name;
    EXPECT_FALSE(policy->reputation_component(2, 1, 0, 2.0).has_value())
        << name << ": the evaluator's own record is not third-party evidence";
  }
}

// --------------------------------------------------- gamma bit-identity

TEST(GammaPolicy, MatchesTheLegacyEngineExactly) {
  TrustEngineConfig config;
  config.learn_recommender_weights = true;
  TrustEngine legacy(config, 5, 2);
  GammaReputationPolicy policy(config, 5, 2);
  const auto stream = fixed_stream(5);
  for (const Transaction& tx : stream) {
    legacy.record_transaction(tx);
    policy.record_transaction(tx);
  }
  const double now = stream.back().time + 5.0;
  for (EntityId x = 0; x < 5; ++x) {
    for (EntityId y = 0; y < 5; ++y) {
      if (x == y) continue;
      EXPECT_EQ(legacy.eventual_trust(x, y, 0, now),
                policy.evaluate(x, y, 0, now));
      EXPECT_EQ(legacy.eventual_offered_level(x, y, 0, now),
                policy.offered_level(x, y, 0, now));
    }
  }
}

TEST(GammaPolicy, RecommendationFoldsAsTheRecommendersOwnRecord) {
  GammaReputationPolicy via_tx({}, 3, 1);
  GammaReputationPolicy via_rec({}, 3, 1);
  via_tx.record_transaction({0, 1, 0, 1.0, 4.5});
  via_rec.record_recommendation({0, 1, 0, 1.0, 4.5});
  EXPECT_EQ(via_tx.evaluate(2, 1, 0, 2.0), via_rec.evaluate(2, 1, 0, 2.0));
  EXPECT_EQ(via_tx.observation_count(0, 1, 0),
            via_rec.observation_count(0, 1, 0));
}

TEST(DomainTrustBridge, LegacyShimAndPolicyCtorAgree) {
  const auto feed = [](DomainTrustBridge& bridge, TrustLevelTable& table) {
    double t = 0.0;
    for (int round = 0; round < 5; ++round) {
      for (std::size_t cd = 0; cd < 2; ++cd) {
        for (std::size_t rd = 0; rd < 2; ++rd) {
          t += 1.0;
          bridge.observe_client_side(cd, rd, 0, t, rd == 0 ? 5.5 : 2.0);
          bridge.observe_resource_side(rd, cd, 0, t, 5.0);
        }
      }
      bridge.refresh(table, t);
    }
  };
  DomainTrustBridge legacy(TrustEngineConfig{}, 2, 2, 1);
  DomainTrustBridge modern(
      make_reputation_policy("gamma", params_for(4, 1)), 2, 2, 1);
  TrustLevelTable legacy_table(2, 2, 1);
  TrustLevelTable modern_table(2, 2, 1);
  feed(legacy, legacy_table);
  feed(modern, modern_table);
  for (std::size_t cd = 0; cd < 2; ++cd) {
    for (std::size_t rd = 0; rd < 2; ++rd) {
      EXPECT_EQ(legacy_table.get(cd, rd, 0), modern_table.get(cd, rd, 0));
    }
  }
  // engine() keeps working on the gamma backend, and refuses elsewhere.
  EXPECT_EQ(legacy.engine().transaction_count(),
            modern.engine().transaction_count());
  DomainTrustBridge beta_bridge(make_reputation_policy("beta", params_for(4, 1)),
                                2, 2, 1);
  EXPECT_THROW((void)beta_bridge.engine(), PreconditionError);
}

// --------------------------------------------------------------- purging

TEST(PurgingPolicy, PurgesDeviantRecommendationsOnly) {
  PurgeConfig config;
  config.min_consensus = 2;
  config.deviation_threshold = 1.5;
  PurgingReputationPolicy policy(
      make_reputation_policy("gamma", params_for(5, 1)), config);
  // First-hand experience anchors the consensus around ~2.0.
  policy.record_transaction({0, 4, 0, 1.0, 2.0});
  policy.record_transaction({1, 4, 0, 2.0, 2.2});
  // An honest recommendation near the consensus passes...
  policy.record_recommendation({2, 4, 0, 3.0, 2.5});
  // ...a ballot-stuffed 6.0 does not.
  policy.record_recommendation({3, 4, 0, 4.0, 6.0});
  const auto counters = policy.counters();
  EXPECT_EQ(counters[0].first, "purged_recommendations");
  EXPECT_EQ(counters[0].second, 1u);
  EXPECT_EQ(counters[1].first, "accepted_recommendations");
  EXPECT_EQ(counters[1].second, 1u);
  // The purged recommender left no trace in the base policy.
  EXPECT_EQ(policy.observation_count(3, 4, 0), 0u);
  EXPECT_EQ(policy.observation_count(2, 4, 0), 1u);
}

TEST(PurgingPolicy, ColdFilterPassesEverything) {
  PurgeConfig config;
  config.min_consensus = 3;
  PurgingReputationPolicy policy(
      make_reputation_policy("gamma", params_for(4, 1)), config);
  policy.record_recommendation({0, 3, 0, 1.0, 6.0});
  policy.record_recommendation({1, 3, 0, 2.0, 1.0});
  const auto counters = policy.counters();
  EXPECT_EQ(counters[0].second, 0u);  // nothing purged
  EXPECT_EQ(counters[1].second, 2u);  // both accepted
}

TEST(PurgingPolicy, ForgetClearsTheConsensusToo) {
  PurgeConfig config;
  config.min_consensus = 1;
  config.deviation_threshold = 0.5;
  PurgingReputationPolicy policy(
      make_reputation_policy("gamma", params_for(4, 1)), config);
  policy.record_transaction({0, 2, 0, 1.0, 2.0});
  // Entity 2 re-registers: its consensus history must not follow it.
  EXPECT_GT(policy.forget(2), 0u);
  // With the consensus gone, a glowing report about the "newcomer" passes.
  policy.record_recommendation({1, 2, 0, 2.0, 6.0});
  EXPECT_EQ(policy.counters()[0].second, 0u);
}

TEST(PurgingPolicy, ExposesTheBaseAllianceGraph) {
  const auto params = params_for(4, 1);
  PurgingReputationPolicy over_gamma(make_reputation_policy("gamma", params),
                                     PurgeConfig{});
  EXPECT_NE(over_gamma.alliance_graph(), nullptr);
  PurgingReputationPolicy over_beta(make_reputation_policy("beta", params),
                                    PurgeConfig{});
  EXPECT_EQ(over_beta.alliance_graph(), nullptr);
}

// ----------------------------------------------------------------- fuzzy

TEST(FuzzyPolicy, EvaluatesMonotonicallyInObservedConduct) {
  const auto params = params_for(3, 1);
  double previous = 0.0;
  for (const double score : {1.0, 2.0, 3.5, 5.0, 6.0}) {
    const auto policy = make_reputation_policy("fuzzy", params);
    policy->record_transaction({0, 1, 0, 1.0, score});
    const double value = policy->evaluate(0, 1, 0, 2.0);
    EXPECT_GE(value, 1.0);
    EXPECT_LE(value, 6.0);
    EXPECT_GT(value, previous) << "score " << score;
    previous = value;
  }
}

TEST(FuzzyPolicy, DirectExperienceDominatesOnConflict) {
  const auto params = params_for(4, 1);
  const auto policy = make_reputation_policy("fuzzy", params);
  // Evaluator 0 saw excellent conduct; third parties badmouth at 1.0.
  policy->record_transaction({0, 1, 0, 1.0, 6.0});
  policy->record_transaction({2, 1, 0, 2.0, 1.0});
  policy->record_transaction({3, 1, 0, 3.0, 1.0});
  // The high-direct/low-indirect rule lands on the medium set, not low.
  EXPECT_GE(policy->evaluate(0, 1, 0, 4.0), 3.0);
}

// ----------------------------------------- scenario + campaign integration

TEST(ScenarioReputation, BuilderValidatesTheBackendName) {
  sim::ScenarioBuilder builder;
  builder.tasks(10).heuristic("mct");
  EXPECT_EQ(builder.with_reputation_backend("purge:fuzzy")
                .build()
                .reputation.name,
            "purge:fuzzy");
  EXPECT_THROW((void)builder.with_reputation_backend("nope").build(),
               PreconditionError);
}

TEST(ScenarioReputation, CampaignCarriesBackendCounters) {
  chaos::AdversarySpec cd;
  cd.side = chaos::AdversarySide::kClientDomain;
  cd.domain = 0;
  cd.kind = chaos::BehaviorKind::kCollusive;
  const sim::Scenario scenario = sim::ScenarioBuilder()
                                     .tasks(10)
                                     .machines(3)
                                     .resource_domains(3, 3)
                                     .client_domains(2, 2)
                                     .heuristic("mct")
                                     .with_adversaries({cd})
                                     .with_reputation_backend("purge:gamma")
                                     .build();
  chaos::CampaignRunConfig config;
  config.rounds = 6;
  config.tasks_per_round = 10;
  const chaos::CampaignResult result =
      chaos::run_campaign(scenario, config, 42);
  EXPECT_EQ(result.reputation_backend, "purge:gamma");
  const obs::RunReport report = result.report();
  EXPECT_TRUE(report.has("trust.purge:gamma.purged_recommendations"));
  EXPECT_TRUE(report.has("trust.purge:gamma.accepted_recommendations"));
  EXPECT_TRUE(report.has("trust.purge:gamma.gamma_evals"));
  // The lone badmouther's 1.0 reports deviate from the honest consensus.
  EXPECT_GT(report.get("trust.purge:gamma.purged_recommendations"), 0.0);
}

TEST(ScenarioReputation, DefaultBackendIsBitIdenticalToLegacyCampaign) {
  const sim::Scenario scenario =
      sim::ScenarioBuilder().tasks(10).heuristic("mct").build();
  ASSERT_TRUE(scenario.reputation.is_default());
  chaos::CampaignRunConfig config;
  config.rounds = 4;
  config.tasks_per_round = 8;
  const auto a = chaos::run_campaign(scenario, config, 7).report();
  sim::Scenario explicit_gamma = scenario;
  explicit_gamma.reputation.name = "gamma";
  const auto b = chaos::run_campaign(explicit_gamma, config, 7).report();
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(SchedPolicyPricing, BridgeOverloadMatchesTheRefreshedTable) {
  Rng rng(21);
  grid::RandomGridParams grid_params;
  grid_params.machines = 4;
  const grid::GridSystem grid = grid::make_random_grid(grid_params, rng);
  const std::size_t n_cd = grid.client_domains().size();
  const std::size_t n_rd = grid.resource_domains().size();
  const std::size_t n_act = grid.activities().size();

  DomainTrustBridge bridge(
      make_reputation_policy("gamma", params_for(n_cd + n_rd, n_act)), n_cd,
      n_rd, n_act, /*min_transactions=*/1);
  double t = 0.0;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t cd = 0; cd < n_cd; ++cd) {
      for (std::size_t rd = 0; rd < n_rd; ++rd) {
        for (std::size_t act = 0; act < n_act; ++act) {
          t += 1.0;
          bridge.observe_client_side(cd, rd, act, t, 4.0 + (rd % 2));
          bridge.observe_resource_side(rd, cd, act, t, 5.0);
        }
      }
    }
  }
  TrustLevelTable table(n_cd, n_rd, n_act);
  bridge.refresh(table, t);

  const auto requests = workload::generate_requests(grid, 12, {}, rng);
  const sched::SecurityCostModel model;
  const auto from_table =
      sched::compute_trust_costs(grid, requests, table, model);
  const auto from_policy =
      sched::compute_trust_costs(grid, requests, bridge, t, model);
  for (std::size_t r = 0; r < requests.size(); ++r) {
    for (std::size_t m = 0; m < grid.machines().size(); ++m) {
      EXPECT_EQ(from_table.get(r, m), from_policy.get(r, m))
          << "request " << r << " machine " << m;
    }
  }
}

TEST(SchedPolicyPricing, BridgeOverloadWorksWithNonGammaBackends) {
  Rng rng(33);
  grid::RandomGridParams grid_params;
  grid_params.machines = 4;
  const grid::GridSystem grid = grid::make_random_grid(grid_params, rng);
  const std::size_t n_cd = grid.client_domains().size();
  const std::size_t n_rd = grid.resource_domains().size();
  const std::size_t n_act = grid.activities().size();

  DomainTrustBridge bridge(
      make_reputation_policy("beta", params_for(n_cd + n_rd, n_act)), n_cd,
      n_rd, n_act, /*min_transactions=*/1);
  double t = 0.0;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t cd = 0; cd < n_cd; ++cd) {
      for (std::size_t rd = 0; rd < n_rd; ++rd) {
        for (std::size_t act = 0; act < n_act; ++act) {
          t += 1.0;
          bridge.observe_client_side(
              cd, rd, act, t, 3.0 + static_cast<double>((cd + rd) % 3));
          bridge.observe_resource_side(rd, cd, act, t, 5.0);
        }
      }
    }
  }
  TrustLevelTable table(n_cd, n_rd, n_act);
  bridge.refresh(table, t);

  const auto requests = workload::generate_requests(grid, 12, {}, rng);
  const sched::SecurityCostModel model;
  const auto from_table =
      sched::compute_trust_costs(grid, requests, table, model);
  const auto from_policy =
      sched::compute_trust_costs(grid, requests, bridge, t, model);
  for (std::size_t r = 0; r < requests.size(); ++r) {
    for (std::size_t m = 0; m < grid.machines().size(); ++m) {
      EXPECT_EQ(from_table.get(r, m), from_policy.get(r, m))
          << "request " << r << " machine " << m;
    }
  }
}

// ----------------------------------------------------- table4 regression

TEST(Table4Regression, GammaBackendReproducesTheCommittedManifest) {
  const lab::SweepSpec* spec = lab::find_spec("table4");
  ASSERT_NE(spec, nullptr);
  lab::Manifest fresh = lab::run_sweep(*spec).manifest;
  lab::Manifest baseline = lab::parse_manifest(
      read_file(std::string(GRIDTRUST_SOURCE_DIR) + "/baselines/table4.json"));
  // git_rev is stamped at runtime and legitimately differs between the
  // committing revision and the test run; every other byte must match.
  fresh.git_rev = "pinned";
  baseline.git_rev = "pinned";
  EXPECT_EQ(lab::to_json(fresh), lab::to_json(baseline))
      << "the default gamma backend no longer reproduces Table 4 "
         "byte-for-byte; if the change is intentional, regenerate "
         "baselines/table4.json";
}

TEST(BackendSweep, LabRunsTheReputationBackendAxis) {
  const lab::SweepSpec* spec = lab::find_spec("backend_tournament");
  ASSERT_NE(spec, nullptr);
  ASSERT_FALSE(spec->axes.empty());
  EXPECT_EQ(spec->axes[0].name, "backend");
  std::vector<std::string> backends;
  for (const auto& value : spec->axes[0].values) {
    backends.push_back(value.text());
  }
  EXPECT_EQ(backends, all_backends());
  EXPECT_NE(lab::find_spec("smoke_backends"), nullptr);
}

}  // namespace
}  // namespace gridtrust::trust
