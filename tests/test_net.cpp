// Tests for the secure-vs-regular transfer simulator (Tables 2-3).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/report.hpp"
#include "net/transfer_model.hpp"

namespace gridtrust::net {
namespace {

TransferModel fast_ethernet_model() {
  const LinkProfile link = fast_ethernet_link();
  return TransferModel(piii_866_host(link), link);
}

TransferModel gigabit_model() {
  const LinkProfile link = gigabit_ethernet_link();
  return TransferModel(piii_866_host(link), link);
}

TEST(TransferModel, ScpAlwaysSlowerThanRcp) {
  for (const TransferModel& model : {fast_ethernet_model(), gigabit_model()}) {
    for (const double size : paper_file_sizes_mb()) {
      EXPECT_GT(model.transfer_time_s(Megabytes(size), Protocol::kScp),
                model.transfer_time_s(Megabytes(size), Protocol::kRcp))
          << size << " MB";
    }
  }
}

TEST(TransferModel, TimesGrowWithSize) {
  const TransferModel model = fast_ethernet_model();
  double prev_rcp = 0.0;
  double prev_scp = 0.0;
  for (const double size : paper_file_sizes_mb()) {
    const double rcp = model.transfer_time_s(Megabytes(size), Protocol::kRcp);
    const double scp = model.transfer_time_s(Megabytes(size), Protocol::kScp);
    EXPECT_GT(rcp, prev_rcp);
    EXPECT_GT(scp, prev_scp);
    prev_rcp = rcp;
    prev_scp = scp;
  }
}

TEST(TransferModel, OverheadWithinSanityBand) {
  for (const TransferModel& model : {fast_ethernet_model(), gigabit_model()}) {
    for (const double size : paper_file_sizes_mb()) {
      const double pct = model.security_overhead_pct(Megabytes(size));
      EXPECT_GT(pct, 0.0);
      EXPECT_LT(pct, 100.0);
    }
  }
}

TEST(TransferModel, FastEthernetBulkMatchesPaperShape) {
  // Paper Table 2: 1000 MB rcp 97 s, scp 155 s, overhead ~37 %.
  const TransferModel model = fast_ethernet_model();
  const double rcp = model.transfer_time_s(Megabytes(1000), Protocol::kRcp);
  const double scp = model.transfer_time_s(Megabytes(1000), Protocol::kScp);
  EXPECT_NEAR(rcp, 97.0, 15.0);
  EXPECT_NEAR(scp, 155.0, 25.0);
  EXPECT_NEAR(model.security_overhead_pct(Megabytes(1000)), 37.0, 8.0);
}

TEST(TransferModel, GigabitBulkMatchesPaperShape) {
  // Paper Table 3: 1000 MB rcp 46 s, scp 138 s, overhead ~67 %.
  const TransferModel model = gigabit_model();
  const double rcp = model.transfer_time_s(Megabytes(1000), Protocol::kRcp);
  const double scp = model.transfer_time_s(Megabytes(1000), Protocol::kScp);
  EXPECT_NEAR(rcp, 46.0, 8.0);
  EXPECT_NEAR(scp, 138.0, 15.0);
  EXPECT_NEAR(model.security_overhead_pct(Megabytes(1000)), 67.0, 6.0);
}

TEST(TransferModel, SecurityNegatesTheFasterNetwork) {
  // The experiment's headline: scp barely improves on the gigabit link
  // because the cipher, not the wire, is the bottleneck.
  const double scp_100 =
      fast_ethernet_model().transfer_time_s(Megabytes(1000), Protocol::kScp);
  const double scp_1000 =
      gigabit_model().transfer_time_s(Megabytes(1000), Protocol::kScp);
  const double rcp_100 =
      fast_ethernet_model().transfer_time_s(Megabytes(1000), Protocol::kRcp);
  const double rcp_1000 =
      gigabit_model().transfer_time_s(Megabytes(1000), Protocol::kRcp);
  const double rcp_speedup = rcp_100 / rcp_1000;
  const double scp_speedup = scp_100 / scp_1000;
  EXPECT_GT(rcp_speedup, 2.0);   // plain copy benefits from the faster link
  EXPECT_LT(scp_speedup, 1.3);   // secure copy barely does
}

TEST(TransferModel, OverheadHigherOnGigabitForBulk) {
  const Megabytes size(1000);
  EXPECT_GT(gigabit_model().security_overhead_pct(size),
            fast_ethernet_model().security_overhead_pct(size));
}

TEST(TransferModel, HandshakeDominatesSmallTransfers) {
  const TransferModel model = gigabit_model();
  const TransferResult r = model.transfer(Megabytes(1), Protocol::kScp);
  EXPECT_GT(r.handshake_s / r.duration_s, 0.5);
  const TransferResult big = model.transfer(Megabytes(1000), Protocol::kScp);
  EXPECT_LT(big.handshake_s / big.duration_s, 0.01);
}

TEST(TransferModel, SteadyRateMatchesBottleneck) {
  const TransferModel model = gigabit_model();
  const TransferResult scp = model.transfer(Megabytes(100), Protocol::kScp);
  // Cipher-bound: cipher 7.3 MB/s combined with NIC processing.
  EXPECT_LT(scp.steady_rate_mb_s, 7.5);
  EXPECT_GT(scp.steady_rate_mb_s, 6.5);
  const TransferResult rcp = model.transfer(Megabytes(100), Protocol::kRcp);
  // Disk-bound at 22 MB/s.
  EXPECT_NEAR(rcp.steady_rate_mb_s, 22.0, 1.0);
}

TEST(TransferModel, ChunkGranularityBarelyMattersForBulk) {
  const TransferModel model = fast_ethernet_model();
  const double coarse =
      model.transfer(Megabytes(500), Protocol::kScp, 4.0).duration_s;
  const double fine =
      model.transfer(Megabytes(500), Protocol::kScp, 0.25).duration_s;
  EXPECT_NEAR(coarse / fine, 1.0, 0.05);
}

TEST(TransferModel, PartialFinalChunkAccounted) {
  const TransferModel model = fast_ethernet_model();
  const TransferResult r = model.transfer(Megabytes(2.5), Protocol::kRcp);
  EXPECT_EQ(r.chunks, 3u);
  const double t2 = model.transfer_time_s(Megabytes(2.0), Protocol::kRcp);
  const double t3 = model.transfer_time_s(Megabytes(3.0), Protocol::kRcp);
  EXPECT_GT(r.duration_s, t2);
  EXPECT_LT(r.duration_s, t3);
}

TEST(TransferModel, Validation) {
  const TransferModel model = fast_ethernet_model();
  EXPECT_THROW(model.transfer(Megabytes(0), Protocol::kRcp),
               PreconditionError);
  EXPECT_THROW(model.transfer(Megabytes(1), Protocol::kRcp, 0.0),
               PreconditionError);
  HostProfile bad_host;
  bad_host.cipher = MegabytesPerSecond(0.0);
  EXPECT_THROW(TransferModel(bad_host, fast_ethernet_link()),
               PreconditionError);
  LinkProfile bad_link;
  bad_link.payload_efficiency = 0.0;
  EXPECT_THROW(TransferModel(HostProfile{}, bad_link), PreconditionError);
}

TEST(TransferModel, ProtocolNames) {
  EXPECT_EQ(to_string(Protocol::kRcp), "rcp");
  EXPECT_EQ(to_string(Protocol::kScp), "scp");
}

TEST(TransferModel, CipherPresets) {
  EXPECT_NEAR(cipher_throughput("3des").value(), 7.3, 1e-9);
  EXPECT_GT(cipher_throughput("blowfish").value(),
            cipher_throughput("3des").value());
  EXPECT_GT(cipher_throughput("arcfour").value(),
            cipher_throughput("blowfish").value());
  EXPECT_THROW(cipher_throughput("rot13"), PreconditionError);
  EXPECT_EQ(known_ciphers().size(), 3u);
}

TEST(TransferModel, FasterCipherShrinksOverheadUntilDiskBound) {
  const LinkProfile link = gigabit_ethernet_link();
  double prev_overhead = 1e9;
  for (const std::string& cipher : known_ciphers()) {
    HostProfile host = piii_866_host(link);
    host.cipher = cipher_throughput(cipher);
    const TransferModel model(host, link);
    const double overhead = model.security_overhead_pct(Megabytes(1000));
    EXPECT_LT(overhead, prev_overhead) << cipher;
    prev_overhead = overhead;
  }
  // arcfour outruns the 22 MB/s disk: the bulk overhead collapses.
  EXPECT_LT(prev_overhead, 5.0);
}

TEST(Report, TableHasPaperLayout) {
  const TextTable table =
      transfer_table(fast_ethernet_model(), "Table 2.", paper_file_sizes_mb());
  EXPECT_EQ(table.row_count(), 5u);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("File size/MB"), std::string::npos);
  EXPECT_NE(out.find("Using rcp/(sec)"), std::string::npos);
  EXPECT_NE(out.find("Overhead"), std::string::npos);
  EXPECT_NE(out.find("1,000"), std::string::npos);
}

TEST(Report, PaperFileSizes) {
  EXPECT_EQ(paper_file_sizes_mb(),
            (std::vector<double>{1, 10, 100, 500, 1000}));
}

}  // namespace
}  // namespace gridtrust::net
