// Cross-module integration tests: the full Fig. 1 loop (transactions ->
// trust agents -> trust-level table -> trust-aware scheduling), end-to-end
// experiment properties, and paper-shape regression checks.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.hpp"
#include "net/transfer_model.hpp"
#include "sched/executor.hpp"
#include "sched/problem.hpp"
#include "sfi/harness.hpp"
#include "sim/experiment.hpp"
#include "trust/agents.hpp"
#include "workload/heterogeneity.hpp"
#include "workload/request_gen.hpp"

namespace gridtrust {
namespace {

// ------------------------------------------------ Fig. 1 closed loop

TEST(Integration, TrustAgentsFeedTheSchedulerTable) {
  // Build a 2-domain grid; domain 1 behaves badly in transactions.  After
  // the agents refresh the table, a high-RTL request must be steered to the
  // trustworthy domain even when its EEC there is slightly worse.
  Rng rng(1);
  grid::GridSystemBuilder builder(grid::ActivityCatalog::standard());
  const auto gd0 = builder.add_grid_domain("honest");
  const auto gd1 = builder.add_grid_domain("shady");
  builder.add_machine(gd0, "m0");
  builder.add_machine(gd1, "m1");
  const grid::GridSystem grid = builder.build();

  trust::DomainTrustBridge bridge(trust::TrustEngineConfig{}, 2, 2, 8, /*min_transactions=*/2);
  // Client domain 0 repeatedly observes good conduct at RD 0, bad at RD 1,
  // for activity 0; the resource side mirrors it.
  for (int i = 0; i < 5; ++i) {
    const double t = i;
    bridge.observe_client_side(0, 0, 0, t, 5.5);
    bridge.observe_resource_side(0, 0, 0, t, 5.5);
    bridge.observe_client_side(0, 1, 0, t, 1.5);
    bridge.observe_resource_side(1, 0, 0, t, 1.5);
  }
  trust::TrustLevelTable table(2, 2, 8);
  EXPECT_GT(bridge.refresh(table, 10.0), 0u);
  EXPECT_GT(trust::to_numeric(table.get(0, 0, 0)),
            trust::to_numeric(table.get(0, 1, 0)));

  grid::Request req;
  req.id = 0;
  req.client_domain = 0;
  req.activities = {0};
  req.client_rtl = trust::TrustLevel::kE;
  req.resource_rtl = trust::TrustLevel::kE;

  sched::SecurityCostModel model;
  sched::CostMatrix eec(1, 2);
  eec.at(0, 0) = 110.0;  // honest domain slightly slower
  eec.at(0, 1) = 100.0;
  const sched::TrustCostMatrix tc =
      sched::compute_trust_costs(grid, {req}, table, model);
  EXPECT_LT(tc.at(0, 0), tc.at(0, 1));

  const sched::SchedulingProblem problem(eec, tc, sched::trust_aware_policy(),
                                         model);
  auto mct = sched::make_mct();
  const sched::Schedule s = sched::run_immediate(problem, *mct);
  EXPECT_EQ(s.machine_of[0], 0u) << "trust-aware MCT must prefer the "
                                    "trustworthy domain";
}

TEST(Integration, MisbehaviourErodesTrustOverTime) {
  trust::TrustEngineConfig cfg;
  cfg.learning_rate = 0.4;
  trust::DomainTrustBridge bridge(cfg, 1, 1, 1, 1);
  trust::TrustLevelTable table(1, 1, 1);
  // Start trustworthy.
  for (int i = 0; i < 4; ++i) {
    bridge.observe_client_side(0, 0, 0, i, 5.0);
    bridge.observe_resource_side(0, 0, 0, i, 5.0);
  }
  bridge.refresh(table, 4.0);
  const int before = trust::to_numeric(table.get(0, 0, 0));
  // Then betray repeatedly.
  for (int i = 5; i < 12; ++i) {
    bridge.observe_client_side(0, 0, 0, i, 1.0);
    bridge.observe_resource_side(0, 0, 0, i, 1.0);
  }
  bridge.refresh(table, 12.0);
  const int after = trust::to_numeric(table.get(0, 0, 0));
  EXPECT_LT(after, before);
}

// ------------------------------------------------ end-to-end experiments

class PaperShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::string, bool>> {};

TEST_P(PaperShapeSweep, TrustAwareWinsForEveryPaperCell) {
  const auto& [heuristic, consistent] = GetParam();
  sim::Scenario scenario;
  scenario.tasks = 50;
  scenario.heterogeneity = consistent ? workload::consistent_lolo()
                                      : workload::inconsistent_lolo();
  if (heuristic != "mct") {
    scenario.rms.mode = sim::SchedulingMode::kBatch;
    scenario.rms.heuristic = heuristic;
  }
  const sim::ComparisonResult result =
      sim::run_comparison(scenario, 15, 4242);
  EXPECT_GT(result.improvement_pct, 5.0)
      << heuristic << (consistent ? " consistent" : " inconsistent");
  EXPECT_TRUE(result.makespan_cmp.significant);
  EXPECT_GT(result.unaware.utilization_pct.mean(), 75.0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperCells, PaperShapeSweep,
    ::testing::Combine(::testing::Values("mct", "min-min", "sufferage"),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, bool>>&
           param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + (std::get<1>(param_info.param) ? "_consistent"
                                                   : "_inconsistent");
    });

TEST(Integration, TrustAwareWinsUnderEveryBatchMapper) {
  // Beyond the paper's three heuristics: the whole batch family, including
  // the search-based mappers, must show a significant trust-aware win.
  for (const std::string& name : sched::batch_heuristic_names()) {
    sim::Scenario scenario;
    scenario.tasks = 40;
    scenario.rms.mode = sim::SchedulingMode::kBatch;
    scenario.rms.heuristic = name;
    const auto result = sim::run_comparison(scenario, 10, 321);
    EXPECT_GT(result.improvement_pct, 0.0) << name;
    EXPECT_TRUE(result.makespan_cmp.significant) << name;
  }
}

TEST(Integration, MakespanScalesRoughlyLinearlyInTasks) {
  // The paper's tables double the makespan from 50 to 100 tasks.
  sim::Scenario s50;
  s50.tasks = 50;
  sim::Scenario s100;
  s100.tasks = 100;
  const auto r50 = sim::run_comparison(s50, 15, 99);
  const auto r100 = sim::run_comparison(s100, 15, 99);
  const double ratio =
      r100.unaware.makespan.mean() / r50.unaware.makespan.mean();
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(Integration, AblationPoliciesBracketThePaperPair) {
  // unaware-placement/tc-priced isolates the cheaper-security effect: it
  // must beat the blanket-priced unaware policy but lose to full awareness.
  sim::Scenario scenario;
  scenario.tasks = 50;
  RunningStats unaware;
  RunningStats middle;
  RunningStats aware;
  const Rng master(7);
  for (std::size_t i = 0; i < 15; ++i) {
    unaware.add(sim::run_single(scenario, sched::trust_unaware_policy(),
                                master.stream(i))
                    .makespan);
    middle.add(sim::run_single(scenario,
                               sched::unaware_placement_tc_priced_policy(),
                               master.stream(i))
                   .makespan);
    aware.add(
        sim::run_single(scenario, sched::trust_aware_policy(), master.stream(i))
            .makespan);
  }
  EXPECT_LT(middle.mean(), unaware.mean());
  EXPECT_LT(aware.mean(), middle.mean());
}

TEST(Integration, ForcedFInterpretationShrinksTheGain) {
  // Under the strict Table 1 reading (RTL = F forces TC = 6) a third of
  // requests pay 90 % security wherever they run, so the trust-aware
  // advantage must shrink relative to the default reading.
  sim::Scenario plain;
  plain.tasks = 50;
  sim::Scenario forced = plain;
  forced.security.table1_forced_f = true;
  const auto r_plain = sim::run_comparison(plain, 15, 31);
  const auto r_forced = sim::run_comparison(forced, 15, 31);
  EXPECT_LT(r_forced.improvement_pct, r_plain.improvement_pct);
}

TEST(Integration, BatchIntervalAffectsFlowTimeNotCorrectness) {
  sim::Scenario fast;
  fast.tasks = 40;
  fast.rms.mode = sim::SchedulingMode::kBatch;
  fast.rms.heuristic = "min-min";
  fast.rms.batch_interval = 5.0;
  sim::Scenario slow = fast;
  slow.rms.batch_interval = 80.0;
  const auto r_fast = sim::run_comparison(fast, 10, 55);
  const auto r_slow = sim::run_comparison(slow, 10, 55);
  // Fewer, larger batches with the long interval.
  EXPECT_LT(r_slow.aware.batches.mean(), r_fast.aware.batches.mean());
  // Both complete everything; makespans stay within a sane band of each
  // other (long intervals delay starts).
  EXPECT_GT(r_slow.aware.makespan.mean(),
            0.5 * r_fast.aware.makespan.mean());
}

TEST(Integration, ImprovementPersistsAcrossTrustDiversityLevels) {
  // Measured finding (bench_diversity): under LoLo heterogeneity the
  // trust-aware advantage is dominated by the pricing gap and consistent
  // decision units, not by placement freedom — so it must hold at *every*
  // diversity level, including a single administrative domain.
  for (const std::size_t rds : {std::size_t{1}, std::size_t{5}}) {
    sim::Scenario scenario;
    scenario.tasks = 50;
    scenario.grid.min_resource_domains = rds;
    scenario.grid.max_resource_domains = rds;
    const auto result = sim::run_comparison(scenario, 20, 77);
    EXPECT_GT(result.improvement_pct, 10.0) << rds << " resource domains";
    EXPECT_TRUE(result.makespan_cmp.significant);
  }
}

TEST(Integration, SfiAndNetworkStudiesBackTheMotivation) {
  // §5.1's argument: security overheads are significant enough that the
  // scheduler should care.  Both substrate studies must agree.
  const net::LinkProfile link = net::gigabit_ethernet_link();
  const net::TransferModel model(net::piii_866_host(link), link);
  EXPECT_GT(model.security_overhead_pct(Megabytes(1000)), 30.0);
  const auto rows = sfi::measure_overheads(1, 5, 2);
  double worst = 0.0;
  for (const auto& row : rows) worst = std::max(worst, row.sasi_overhead_pct);
  EXPECT_GT(worst, 30.0);
}

}  // namespace
}  // namespace gridtrust
