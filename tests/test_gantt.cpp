// Tests for the ASCII Gantt renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "sched/executor.hpp"
#include "sched/gantt.hpp"

namespace gridtrust::sched {
namespace {

SchedulingProblem two_machine_problem() {
  CostMatrix eec(3, 2);
  const double vals[3][2] = {{4, 4}, {4, 4}, {8, 8}};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t m = 0; m < 2; ++m) eec.at(r, m) = vals[r][m];
  }
  TrustCostMatrix tc(3, 2, 0);
  return SchedulingProblem(std::move(eec), std::move(tc),
                           trust_aware_policy(), SecurityCostModel{});
}

Schedule hand_schedule(const SchedulingProblem& p) {
  Schedule s = Schedule::for_problem(p);
  commit_assignment(p, 0, 0, 0.0, s);  // m0: [0, 4)
  commit_assignment(p, 1, 0, 0.0, s);  // m0: [4, 8)
  commit_assignment(p, 2, 1, 0.0, s);  // m1: [0, 8)
  return s;
}

TEST(Gantt, LayoutMatchesHandSchedule) {
  const SchedulingProblem p = two_machine_problem();
  const Schedule s = hand_schedule(p);
  GanttOptions options;
  options.width = 8;  // one column per time unit
  options.axis = false;
  const std::string chart = render_gantt(p, s, options);
  std::istringstream is(chart);
  std::string row0;
  std::string row1;
  std::getline(is, row0);
  std::getline(is, row1);
  EXPECT_EQ(row0, "m0 |00001111|");
  EXPECT_EQ(row1, "m1 |22222222|");
}

TEST(Gantt, IdleTimeRendersAsDots) {
  const SchedulingProblem p = two_machine_problem();
  Schedule s = Schedule::for_problem(p);
  commit_assignment(p, 0, 0, 0.0, s);   // m0 busy [0, 4)
  commit_assignment(p, 2, 0, 8.0, s);   // m0 busy [8, 16) after a gap
  commit_assignment(p, 1, 1, 0.0, s);   // m1 busy [0, 4)
  GanttOptions options;
  options.width = 16;
  options.axis = false;
  const std::string chart = render_gantt(p, s, options);
  std::istringstream is(chart);
  std::string row0;
  std::string row1;
  std::getline(is, row0);
  std::getline(is, row1);
  EXPECT_EQ(row0, "m0 |0000....22222222|");
  EXPECT_EQ(row1, "m1 |1111............|");
}

TEST(Gantt, CustomMachineNamesAndAxis) {
  const SchedulingProblem p = two_machine_problem();
  const Schedule s = hand_schedule(p);
  GanttOptions options;
  options.width = 8;
  options.machine_names = {"uni-hpc", "lab"};
  const std::string chart = render_gantt(p, s, options);
  EXPECT_NE(chart.find("uni-hpc |"), std::string::npos);
  EXPECT_NE(chart.find("lab     |"), std::string::npos);
  EXPECT_NE(chart.find("8.0"), std::string::npos);  // axis end label
  EXPECT_NE(chart.find(" 0"), std::string::npos);   // axis start label
}

TEST(Gantt, GlyphsWrapAfter36Requests) {
  CostMatrix eec(40, 1, 1.0);
  TrustCostMatrix tc(40, 1, 0);
  const SchedulingProblem p(eec, tc, trust_aware_policy(),
                            SecurityCostModel{});
  auto olb = make_olb();
  const Schedule s = run_immediate(p, *olb);
  GanttOptions options;
  options.width = 40;
  options.axis = false;
  const std::string chart = render_gantt(p, s, options);
  // Request 36 reuses glyph '0'; the row must contain both extremes.
  EXPECT_NE(chart.find('z'), std::string::npos);
  EXPECT_EQ(chart.find('|') != std::string::npos, true);
}

TEST(Gantt, PartialSchedulesRenderOnlyAssignedWork) {
  const SchedulingProblem p = two_machine_problem();
  Schedule s = Schedule::for_problem(p);
  commit_assignment(p, 1, 1, 0.0, s);
  const std::string chart = render_gantt(p, s);
  EXPECT_NE(chart.find('1'), std::string::npos);
  EXPECT_EQ(chart.find('0'), chart.find("0"));  // axis zero only
}

TEST(Gantt, Validation) {
  const SchedulingProblem p = two_machine_problem();
  const Schedule empty = Schedule::for_problem(p);
  EXPECT_THROW(render_gantt(p, empty), PreconditionError);  // makespan 0
  const Schedule s = hand_schedule(p);
  GanttOptions narrow;
  narrow.width = 4;
  EXPECT_THROW(render_gantt(p, s, narrow), PreconditionError);
  GanttOptions bad_names;
  bad_names.machine_names = {"only-one"};
  EXPECT_THROW(render_gantt(p, s, bad_names), PreconditionError);
}

}  // namespace
}  // namespace gridtrust::sched
