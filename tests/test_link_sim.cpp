// Tests for the shared-link fluid-flow staging simulator.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/link_sim.hpp"

namespace gridtrust::net {
namespace {

SharedLinkSimulator gigabit_sim() {
  const LinkProfile link = gigabit_ethernet_link();
  return SharedLinkSimulator(piii_866_host(link), link);
}

SharedLinkSimulator fast_sim() {
  const LinkProfile link = fast_ethernet_link();
  return SharedLinkSimulator(piii_866_host(link), link);
}

TEST(LinkSim, SingleSessionMatchesTransferModel) {
  // A lone flow must reproduce the Tables 2-3 model up to the pipeline
  // fill time (the fluid model has no per-chunk fill, so it is slightly
  // faster but within a chunk's worth).
  const LinkProfile link = gigabit_ethernet_link();
  const TransferModel reference(piii_866_host(link), link);
  const SharedLinkSimulator sim(piii_866_host(link), link);
  for (const double mb : {10.0, 100.0, 1000.0}) {
    for (const Protocol protocol : {Protocol::kRcp, Protocol::kScp}) {
      const double fluid =
          sim.simulate({SessionSpec{0.0, Megabytes(mb), protocol}})
              .sessions[0]
              .duration();
      const double chunked = reference.transfer_time_s(Megabytes(mb), protocol);
      EXPECT_NEAR(fluid, chunked, 0.05 * chunked + 0.5)
          << mb << " MB " << to_string(protocol);
    }
  }
}

TEST(LinkSim, OutcomesAreTimeOrderedAndComplete) {
  const auto report = gigabit_sim().simulate(
      {SessionSpec{0.0, Megabytes(50), Protocol::kScp},
       SessionSpec{1.0, Megabytes(20), Protocol::kRcp},
       SessionSpec{2.0, Megabytes(5), Protocol::kScp}});
  ASSERT_EQ(report.sessions.size(), 3u);
  for (const SessionOutcome& s : report.sessions) {
    EXPECT_GE(s.streaming_from, s.start);
    EXPECT_GT(s.finish, s.streaming_from);
  }
  EXPECT_NEAR(report.total_payload_mb, 75.0, 1e-9);
  EXPECT_GT(report.aggregate_rate_mb_s, 0.0);
}

TEST(LinkSim, ParallelScpDoesNotScale) {
  // The cipher is one shared CPU: 4 parallel scp flows move the payload no
  // faster than one batched flow.
  const auto sim = gigabit_sim();
  const auto par = sim.stage_parallel(4, Megabytes(100), Protocol::kScp);
  const auto bat = sim.stage_batched(4, Megabytes(100), Protocol::kScp);
  EXPECT_GE(par.makespan, bat.makespan - 1e-6);
  // Aggregate throughput is pinned at the cipher rate either way.
  EXPECT_NEAR(par.aggregate_rate_mb_s, bat.aggregate_rate_mb_s,
              0.15 * bat.aggregate_rate_mb_s + 0.2);
}

TEST(LinkSim, ParallelRcpScalesUntilTheLinkSaturates) {
  // On the fast-Ethernet link one rcp flow is link-bound already, so
  // parallelism cannot help; it must not hurt much either.
  const auto fast = fast_sim();
  const auto one = fast.stage_batched(4, Megabytes(100), Protocol::kRcp);
  const auto four = fast.stage_parallel(4, Megabytes(100), Protocol::kRcp);
  EXPECT_NEAR(four.makespan, one.makespan, 0.1 * one.makespan + 1.0);
}

TEST(LinkSim, BatchingEliminatesHandshakeOverheadForSmallFiles) {
  const auto sim = gigabit_sim();
  const std::size_t files = 50;
  const auto seq = sim.stage_sequential(files, Megabytes(1), Protocol::kScp);
  const auto bat = sim.stage_batched(files, Megabytes(1), Protocol::kScp);
  // Sequential pays ~50 handshakes at 0.45 s; batched pays one.
  EXPECT_GT(seq.makespan - bat.makespan, 0.8 * 0.45 * (files - 1));
}

TEST(LinkSim, SequentialSessionsDoNotOverlap) {
  const auto sim = gigabit_sim();
  const auto report = sim.stage_sequential(5, Megabytes(10), Protocol::kScp);
  for (std::size_t i = 1; i < report.sessions.size(); ++i) {
    EXPECT_GE(report.sessions[i].start,
              report.sessions[i - 1].finish - 1e-6);
  }
}

TEST(LinkSim, LateArrivalWaitsForItsStart) {
  const auto report = gigabit_sim().simulate(
      {SessionSpec{100.0, Megabytes(1), Protocol::kRcp}});
  EXPECT_NEAR(report.sessions[0].start, 100.0, 1e-9);
  EXPECT_GT(report.sessions[0].finish, 100.0);
}

TEST(LinkSim, FairSharingSlowsConcurrentIdenticalFlows) {
  const auto sim = fast_sim();
  const double solo =
      sim.simulate({SessionSpec{0.0, Megabytes(100), Protocol::kRcp}})
          .sessions[0]
          .duration();
  const auto both = sim.simulate(
      {SessionSpec{0.0, Megabytes(100), Protocol::kRcp},
       SessionSpec{0.0, Megabytes(100), Protocol::kRcp}});
  // Two link-bound flows sharing one link take about twice as long.
  EXPECT_NEAR(both.sessions[0].duration(), 2.0 * solo, 0.2 * solo + 1.0);
}

TEST(LinkSim, MixedProtocolsShareSanely) {
  // An rcp flow next to an scp flow: the rcp flow gets the link share the
  // cipher-bound scp flow cannot use... with equal link split, rcp is
  // capped at half the link; assert both finish and scp remains slower.
  const auto report = gigabit_sim().simulate(
      {SessionSpec{0.0, Megabytes(200), Protocol::kRcp},
       SessionSpec{0.0, Megabytes(200), Protocol::kScp}});
  EXPECT_LT(report.sessions[0].finish, report.sessions[1].finish);
}

TEST(LinkSim, Validation) {
  const auto sim = gigabit_sim();
  EXPECT_THROW(sim.simulate({}), PreconditionError);
  EXPECT_THROW(sim.simulate({SessionSpec{0.0, Megabytes(0), Protocol::kRcp}}),
               PreconditionError);
  EXPECT_THROW(
      sim.simulate({SessionSpec{-1.0, Megabytes(1), Protocol::kRcp}}),
      PreconditionError);
  EXPECT_THROW(sim.stage_parallel(0, Megabytes(1), Protocol::kRcp),
               PreconditionError);
}

TEST(LinkSim, StrategiesMoveIdenticalPayload) {
  const auto sim = gigabit_sim();
  const auto par = sim.stage_parallel(8, Megabytes(25), Protocol::kScp);
  const auto seq = sim.stage_sequential(8, Megabytes(25), Protocol::kScp);
  const auto bat = sim.stage_batched(8, Megabytes(25), Protocol::kScp);
  EXPECT_NEAR(par.total_payload_mb, 200.0, 1e-9);
  EXPECT_NEAR(seq.total_payload_mb, 200.0, 1e-9);
  EXPECT_NEAR(bat.total_payload_mb, 200.0, 1e-9);
}

}  // namespace
}  // namespace gridtrust::net
