// Robustness sweeps: randomly mutated inputs to the text parsers must
// either parse to a valid object or throw PreconditionError — never crash,
// hang, or produce an out-of-range object.  Also stress-cases for the DES
// kernel and the trust engine under randomized operation sequences.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "trust/serialization.hpp"
#include "trust/trust_engine.hpp"
#include "workload/heterogeneity.hpp"
#include "workload/request_gen.hpp"
#include "workload/trace.hpp"

namespace gridtrust {
namespace {

std::string mutate(std::string text, Rng& rng) {
  if (text.empty()) return text;
  switch (rng.index(4)) {
    case 0: {  // flip a character
      const std::size_t pos = rng.index(text.size());
      text[pos] = static_cast<char>(rng.uniform_int(32, 126));
      break;
    }
    case 1: {  // delete a slice
      const std::size_t pos = rng.index(text.size());
      const std::size_t len = 1 + rng.index(8);
      text.erase(pos, len);
      break;
    }
    case 2: {  // duplicate a slice
      const std::size_t pos = rng.index(text.size());
      const std::size_t len =
          std::min<std::size_t>(1 + rng.index(16), text.size() - pos);
      text.insert(pos, text.substr(pos, len));
      break;
    }
    case 3: {  // truncate
      text.resize(rng.index(text.size()));
      break;
    }
  }
  return text;
}

class ParserRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRobustness, MutatedTrustTablesNeverEscapeValidation) {
  Rng rng(GetParam());
  trust::TrustLevelTable table(2, 3, 4);
  table.randomize(rng);
  std::string text = trust::table_to_string(table);
  for (int round = 0; round < 40; ++round) {
    text = mutate(text, rng);
    try {
      const trust::TrustLevelTable parsed = trust::table_from_string(text);
      // If it parsed, every entry must be a valid offered level.
      for (std::size_t cd = 0; cd < parsed.client_domains(); ++cd) {
        for (std::size_t rd = 0; rd < parsed.resource_domains(); ++rd) {
          for (std::size_t act = 0; act < parsed.activities(); ++act) {
            const int v = trust::to_numeric(parsed.get(cd, rd, act));
            ASSERT_GE(v, 1);
            ASSERT_LE(v, 5);
          }
        }
      }
    } catch (const PreconditionError&) {
      // Rejection is the expected outcome for most mutations.
    }
  }
}

TEST_P(ParserRobustness, MutatedTracesNeverEscapeValidation) {
  Rng rng(GetParam() + 1000);
  const grid::GridSystem grid =
      grid::make_random_grid(grid::RandomGridParams{}, rng);
  const auto requests = workload::generate_requests(grid, 8, {}, rng);
  const auto eec = workload::generate_eec(8, grid.machines().size(),
                                          workload::inconsistent_lolo(), rng);
  std::string text = workload::trace_to_string(requests, eec);
  for (int round = 0; round < 40; ++round) {
    text = mutate(text, rng);
    try {
      const workload::Trace parsed = workload::trace_from_string(text);
      ASSERT_FALSE(parsed.requests.empty());
      for (const grid::Request& req : parsed.requests) {
        ASSERT_FALSE(req.activities.empty());
        ASSERT_GE(req.arrival_time, 0.0);
      }
      for (std::size_t r = 0; r < parsed.eec.rows(); ++r) {
        for (std::size_t m = 0; m < parsed.eec.cols(); ++m) {
          ASSERT_GE(parsed.eec.get(r, m), 0.0);
        }
      }
    } catch (const PreconditionError&) {
    } catch (const std::out_of_range&) {
      // std::stoull overflow on a mutated giant number is acceptable too.
    }
  }
}

TEST_P(ParserRobustness, MutatedEngineSnapshotsNeverEscapeValidation) {
  Rng rng(GetParam() + 2000);
  trust::TrustEngine engine({}, 4, 2);
  for (int i = 0; i < 20; ++i) {
    const auto a = static_cast<trust::EntityId>(rng.index(4));
    auto b = static_cast<trust::EntityId>(rng.index(4));
    if (a == b) b = static_cast<trust::EntityId>((b + 1) % 4);
    engine.record_transaction({a, b, static_cast<trust::ContextId>(rng.index(2)),
                               static_cast<double>(i), rng.uniform(1.0, 6.0)});
  }
  std::ostringstream os;
  trust::save_engine(engine, os);
  std::string text = os.str();
  for (int round = 0; round < 40; ++round) {
    text = mutate(text, rng);
    trust::TrustEngine target({}, 4, 2);
    std::istringstream is(text);
    try {
      trust::load_engine(target, is);
      // If it loaded, all records must satisfy the engine's invariants.
      for (const auto& entry : target.export_records()) {
        ASSERT_NE(entry.truster, entry.trustee);
        ASSERT_GE(entry.record.level, 0.0);
        ASSERT_LE(entry.record.level, 6.0);
        ASSERT_GE(entry.record.count, 1u);
      }
    } catch (const PreconditionError&) {
    } catch (const std::out_of_range&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness,
                         ::testing::Range<std::uint64_t>(0, 8));

// --------------------------------------------------------- stress cases

TEST(DesStress, RandomScheduleCancelInterleavingStaysConsistent) {
  Rng rng(42);
  des::Simulator sim;
  std::vector<des::EventId> live;
  std::uint64_t executed_expected = 0;
  std::uint64_t fired = 0;
  for (int op = 0; op < 5000; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.6 || live.empty()) {
      live.push_back(sim.schedule_in(rng.uniform(0.0, 10.0),
                                     [&fired] { ++fired; }));
    } else if (roll < 0.8) {
      const std::size_t pick = rng.index(live.size());
      sim.cancel(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      sim.run_until(sim.now() + rng.uniform(0.0, 5.0));
    }
  }
  sim.run();
  executed_expected = sim.executed_events();
  EXPECT_EQ(fired, executed_expected);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(TrustEngineStress, GammaStaysOnScaleUnderRandomHistories) {
  Rng rng(77);
  trust::TrustEngineConfig cfg;
  cfg.learn_recommender_weights = true;
  cfg.decay = trust::make_exponential_decay(50.0);
  trust::TrustEngine engine(cfg, 8, 3);
  engine.alliances().ally(1, 2);
  engine.alliances().ally(3, 4);
  double t = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const auto a = static_cast<trust::EntityId>(rng.index(8));
    auto b = static_cast<trust::EntityId>(rng.index(8));
    if (a == b) b = static_cast<trust::EntityId>((b + 1) % 8);
    t += rng.exponential(1.0);
    engine.record_transaction({a, b,
                               static_cast<trust::ContextId>(rng.index(3)), t,
                               rng.uniform(1.0, 6.0)});
    if (i % 100 == 0) {
      for (trust::EntityId x = 0; x < 8; ++x) {
        for (trust::EntityId y = 0; y < 8; ++y) {
          if (x == y) continue;
          const double gamma = engine.eventual_trust(x, y, 0, t);
          // Decay can push Γ below the 1.0 floor of the observation scale,
          // but never below 0 or above 6.
          ASSERT_GE(gamma, 0.0);
          ASSERT_LE(gamma, 6.0);
        }
      }
    }
  }
}

}  // namespace
}  // namespace gridtrust
