// Tests for the discrete-event simulation kernel and arrival processes.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "des/arrival.hpp"
#include "des/simulator.hpp"

namespace gridtrust::des {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.executed_events(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(Simulator, RejectsPastEvents) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), PreconditionError);
}

TEST(Simulator, RejectsEmptyAction) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, nullptr), PreconditionError);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterExecutionFails) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelFromWithinEvent) {
  Simulator sim;
  bool second_ran = false;
  const EventId victim = sim.schedule_at(2.0, [&] { second_ran = true; });
  sim.schedule_at(1.0, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  sim.run();
  EXPECT_FALSE(second_ran);
}

TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  const EventId id = sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, StepReturnsFalseOnEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&, t] { fired.push_back(t); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), 2.5);
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilIncludesEventsAtBoundary) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(2.0, [&] { ran = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilRejectsPast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.run_until(1.0), PreconditionError);
}

TEST(Simulator, MaxEventsGuardStopsRunawayChains) {
  Simulator sim;
  std::function<void()> self = [&] { sim.schedule_in(1.0, self); };
  sim.schedule_at(0.0, self);
  sim.run(/*max_events=*/100);
  EXPECT_EQ(sim.executed_events(), 100u);
}

TEST(Simulator, ResetClearsEverything) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.step();
  sim.reset();
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.executed_events(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsScheduledDuringExecutionRun) {
  Simulator sim;
  int depth = 0;
  std::function<void(int)> nest = [&](int d) {
    depth = d;
    if (d < 5) sim.schedule_in(1.0, [&, d] { nest(d + 1); });
  };
  sim.schedule_at(0.0, [&] { nest(1); });
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 4.0);
}

// ---------------------------------------------------------------- arrivals

TEST(PoissonArrivals, GapsHaveExponentialMean) {
  PoissonArrivals arrivals(2.0, Rng(5));
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(arrivals.next_gap());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  // Exponential: stddev == mean.
  EXPECT_NEAR(s.stddev(), 0.5, 0.02);
}

TEST(PoissonArrivals, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonArrivals(0.0, Rng(1)), PreconditionError);
}

TEST(FixedArrivals, ConstantGaps) {
  FixedArrivals arrivals(2.5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(arrivals.next_gap(), 2.5);
  EXPECT_THROW(FixedArrivals(-1.0), PreconditionError);
}

TEST(BurstyArrivals, MeanBetweenOnAndOffRates) {
  BurstyArrivals arrivals(10.0, 0.5, 20.0, Rng(9));
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(arrivals.next_gap());
  EXPECT_GT(s.mean(), 1.0 / 10.0);
  EXPECT_LT(s.mean(), 1.0 / 0.5);
}

TEST(BurstyArrivals, Validation) {
  EXPECT_THROW(BurstyArrivals(0.0, 1.0, 5.0, Rng(1)), PreconditionError);
  EXPECT_THROW(BurstyArrivals(1.0, 1.0, 0.5, Rng(1)), PreconditionError);
}

TEST(DriveArrivals, SchedulesCountEventsInOrder) {
  Simulator sim;
  FixedArrivals arrivals(1.0);
  std::vector<std::size_t> seen;
  std::vector<double> times;
  drive_arrivals(sim, arrivals, 5, [&](std::size_t i, SimTime t) {
    seen.push_back(i);
    times.push_back(t);
  });
  sim.run();
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(times, (std::vector<double>{1, 2, 3, 4, 5}));
}

TEST(DriveArrivals, CallbackOutlivesCall) {
  Simulator sim;
  FixedArrivals arrivals(1.0);
  int count = 0;
  {
    // The callback goes out of scope before run(); drive_arrivals must have
    // copied it.
    std::function<void(std::size_t, SimTime)> cb =
        [&count](std::size_t, SimTime) { ++count; };
    drive_arrivals(sim, arrivals, 3, cb);
  }
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(DriveArrivals, PoissonArrivalTimesAreMonotone) {
  Simulator sim;
  PoissonArrivals arrivals(1.0, Rng(11));
  double last = 0.0;
  bool monotone = true;
  drive_arrivals(sim, arrivals, 1000, [&](std::size_t, SimTime t) {
    if (t < last) monotone = false;
    last = t;
  });
  sim.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace gridtrust::des
