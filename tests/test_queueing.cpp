// Queueing-theoretic validation of the DES kernel: an M/M/m queue built on
// the simulator must match the analytic Erlang-C results.  This exercises
// the event queue, timer cancellation-free paths, and the Poisson arrival
// machinery end to end against closed-form ground truth.
#include <gtest/gtest.h>

#include <cmath>
#include <queue>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "des/arrival.hpp"
#include "des/simulator.hpp"

namespace gridtrust::des {
namespace {

/// Analytic Erlang-C delay probability for an M/M/m queue with offered
/// load a = lambda/mu.
double erlang_c(std::size_t m, double a) {
  double term = 1.0;  // a^0 / 0!
  double sum = term;
  for (std::size_t k = 1; k < m; ++k) {
    term *= a / static_cast<double>(k);
    sum += term;
  }
  const double am = term * a / static_cast<double>(m);  // a^m / m!
  const double rho = a / static_cast<double>(m);
  const double top = am / (1.0 - rho);
  return top / (sum + top);
}

/// Mean queueing delay (excluding service) for M/M/m.
double analytic_wq(std::size_t m, double lambda, double mu) {
  const double a = lambda / mu;
  return erlang_c(m, a) / (static_cast<double>(m) * mu - lambda);
}

/// Simulates an FCFS M/M/m queue on the DES kernel; returns the mean wait
/// in queue over `jobs` completed jobs.
double simulate_wq(std::size_t m, double lambda, double mu, std::size_t jobs,
                   std::uint64_t seed) {
  Simulator sim;
  Rng service_rng(seed ^ 0xabcdef);
  PoissonArrivals arrivals(lambda, Rng(seed));

  std::size_t busy = 0;
  std::queue<double> waiting;  // arrival times of queued jobs
  RunningStats wait;

  // Forward declaration dance: completion handler frees a server and pulls
  // the next queued job.
  std::function<void()> complete = [&] {
    --busy;
    if (!waiting.empty()) {
      const double arrived = waiting.front();
      waiting.pop();
      wait.add(sim.now() - arrived);
      ++busy;
      sim.schedule_in(service_rng.exponential(1.0 / mu), complete);
    }
  };

  drive_arrivals(sim, arrivals, jobs, [&](std::size_t, SimTime now) {
    if (busy < m) {
      ++busy;
      wait.add(0.0);
      sim.schedule_in(service_rng.exponential(1.0 / mu), complete);
    } else {
      waiting.push(now);
    }
  });

  sim.run();
  return wait.mean();
}

struct MmmCase {
  std::size_t servers;
  double lambda;
  double mu;
};

class MmmValidation : public ::testing::TestWithParam<MmmCase> {};

TEST_P(MmmValidation, MeanQueueDelayMatchesErlangC) {
  const MmmCase c = GetParam();
  const double analytic = analytic_wq(c.servers, c.lambda, c.mu);
  const double simulated =
      simulate_wq(c.servers, c.lambda, c.mu, 200000, 12345);
  // 5 % relative tolerance plus a small absolute floor for tiny delays.
  EXPECT_NEAR(simulated, analytic, 0.05 * analytic + 0.002)
      << "m=" << c.servers << " lambda=" << c.lambda << " mu=" << c.mu;
}

INSTANTIATE_TEST_SUITE_P(
    Loads, MmmValidation,
    ::testing::Values(MmmCase{1, 0.5, 1.0},   // M/M/1, rho = 0.5
                      MmmCase{1, 0.8, 1.0},   // M/M/1, rho = 0.8
                      MmmCase{4, 3.0, 1.0},   // M/M/4, rho = 0.75
                      MmmCase{5, 4.5, 1.0},   // M/M/5, rho = 0.9 (heavy)
                      MmmCase{8, 4.0, 1.0}),  // M/M/8, rho = 0.5 (light)
    [](const ::testing::TestParamInfo<MmmCase>& param_info) {
      const MmmCase& c = param_info.param;
      return "m" + std::to_string(c.servers) + "_rho" +
             std::to_string(static_cast<int>(
                 100.0 * c.lambda / (static_cast<double>(c.servers) * c.mu)));
    });

TEST(MmmValidation, ErlangCSanity) {
  // M/M/1: C = rho.
  EXPECT_NEAR(erlang_c(1, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(erlang_c(1, 0.8), 0.8, 1e-12);
  // More servers at the same load per server queue less.
  EXPECT_LT(erlang_c(8, 4.0), erlang_c(2, 1.0));
}

}  // namespace
}  // namespace gridtrust::des
