// Tests for the trust core: levels, ETS (Table 1), the trust-level table,
// decay functions, alliances, the §2.2 trust engine, and the Fig. 1 agents.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trust/agents.hpp"
#include "trust/report.hpp"
#include "trust/alliance.hpp"
#include "trust/decay.hpp"
#include "trust/ets.hpp"
#include "trust/trust_engine.hpp"
#include "trust/trust_level.hpp"
#include "trust/trust_table.hpp"

namespace gridtrust::trust {
namespace {

// ---------------------------------------------------------------- levels

TEST(TrustLevel, NumericMappingMatchesPaper) {
  EXPECT_EQ(to_numeric(TrustLevel::kA), 1);
  EXPECT_EQ(to_numeric(TrustLevel::kB), 2);
  EXPECT_EQ(to_numeric(TrustLevel::kC), 3);
  EXPECT_EQ(to_numeric(TrustLevel::kD), 4);
  EXPECT_EQ(to_numeric(TrustLevel::kE), 5);
  EXPECT_EQ(to_numeric(TrustLevel::kF), 6);
}

TEST(TrustLevel, RoundTripNumeric) {
  for (int v = 1; v <= 6; ++v) {
    EXPECT_EQ(to_numeric(level_from_numeric(v)), v);
  }
  EXPECT_THROW(level_from_numeric(0), PreconditionError);
  EXPECT_THROW(level_from_numeric(7), PreconditionError);
}

TEST(TrustLevel, StringConversions) {
  EXPECT_EQ(to_string(TrustLevel::kA), "A");
  EXPECT_EQ(to_string(TrustLevel::kF), "F");
  EXPECT_EQ(level_from_string("C"), TrustLevel::kC);
  EXPECT_EQ(level_from_string("c"), TrustLevel::kC);
  EXPECT_THROW(level_from_string("G"), PreconditionError);
  EXPECT_THROW(level_from_string("AB"), PreconditionError);
  EXPECT_THROW(level_from_string(""), PreconditionError);
}

TEST(TrustLevel, QuantizeClampsAndRounds) {
  EXPECT_EQ(quantize_level(1.0), TrustLevel::kA);
  EXPECT_EQ(quantize_level(2.4), TrustLevel::kB);
  EXPECT_EQ(quantize_level(2.6), TrustLevel::kC);
  EXPECT_EQ(quantize_level(6.0), TrustLevel::kF);
  EXPECT_EQ(quantize_level(0.0), TrustLevel::kA);   // clamp low
  EXPECT_EQ(quantize_level(99.0), TrustLevel::kF);  // clamp high
}

TEST(TrustLevel, MinMaxHelpers) {
  EXPECT_EQ(min_level(TrustLevel::kC, TrustLevel::kE), TrustLevel::kC);
  EXPECT_EQ(max_level(TrustLevel::kC, TrustLevel::kE), TrustLevel::kE);
  EXPECT_EQ(min_level(TrustLevel::kB, TrustLevel::kB), TrustLevel::kB);
}

// ---------------------------------------------------------------- ETS

TEST(Ets, ZeroWhenOfferMeetsRequirement) {
  for (int r = 1; r <= 5; ++r) {
    for (int o = r; o <= 5; ++o) {
      EXPECT_EQ(trust_cost(level_from_numeric(r), level_from_numeric(o)), 0);
    }
  }
}

TEST(Ets, DifferenceWhenOfferFallsShort) {
  EXPECT_EQ(trust_cost(TrustLevel::kB, TrustLevel::kA), 1);
  EXPECT_EQ(trust_cost(TrustLevel::kC, TrustLevel::kA), 2);
  EXPECT_EQ(trust_cost(TrustLevel::kD, TrustLevel::kB), 2);
  EXPECT_EQ(trust_cost(TrustLevel::kE, TrustLevel::kA), 4);
  EXPECT_EQ(trust_cost(TrustLevel::kE, TrustLevel::kD), 1);
}

TEST(Ets, RowFAlwaysMaximal) {
  // Table 1: requesting F forces the full supplement whatever is offered.
  for (int o = 1; o <= 5; ++o) {
    EXPECT_EQ(trust_cost(TrustLevel::kF, level_from_numeric(o)),
              kMaxTrustCost);
  }
}

TEST(Ets, RejectsOfferedF) {
  EXPECT_THROW(trust_cost(TrustLevel::kA, TrustLevel::kF), PreconditionError);
}

TEST(Ets, SymbolsMatchPaperNotation) {
  EXPECT_EQ(ets_symbol(TrustLevel::kA, TrustLevel::kA), "0");
  EXPECT_EQ(ets_symbol(TrustLevel::kC, TrustLevel::kA), "C - A");
  EXPECT_EQ(ets_symbol(TrustLevel::kE, TrustLevel::kD), "E - D");
  EXPECT_EQ(ets_symbol(TrustLevel::kF, TrustLevel::kC), "F");
}

TEST(Ets, AverageTrustCostOverTableCells) {
  // The paper quotes "the average TC value is 3" (the midpoint of the 0..6
  // range); the exact mean over the Table 1 cells is 50/30.  Assert the
  // computed value so the discrepancy stays documented.
  EXPECT_NEAR(average_trust_cost(), 50.0 / 30.0, 1e-12);
}

TEST(Ets, TablesHaveSixRowsAndSixColumns) {
  const TextTable sym = ets_symbol_table();
  const TextTable num = ets_numeric_table();
  EXPECT_EQ(sym.row_count(), 6u);
  EXPECT_EQ(num.row_count(), 6u);
  EXPECT_NE(sym.to_string().find("C - B"), std::string::npos);
  EXPECT_NE(num.to_string().find("6"), std::string::npos);
}

// ---------------------------------------------------------------- table

TEST(TrustTable, StartsAtLowestLevel) {
  TrustLevelTable table(2, 3, 4);
  for (std::size_t cd = 0; cd < 2; ++cd) {
    for (std::size_t rd = 0; rd < 3; ++rd) {
      for (std::size_t act = 0; act < 4; ++act) {
        EXPECT_EQ(table.get(cd, rd, act), TrustLevel::kA);
      }
    }
  }
}

TEST(TrustTable, SetAndGet) {
  TrustLevelTable table(2, 2, 2);
  table.set(1, 0, 1, TrustLevel::kD);
  EXPECT_EQ(table.get(1, 0, 1), TrustLevel::kD);
  EXPECT_EQ(table.get(0, 1, 1), TrustLevel::kA);
}

TEST(TrustTable, RejectsOfferedF) {
  TrustLevelTable table(1, 1, 1);
  EXPECT_THROW(table.set(0, 0, 0, TrustLevel::kF), PreconditionError);
}

TEST(TrustTable, BoundsChecked) {
  TrustLevelTable table(2, 2, 2);
  EXPECT_THROW(table.get(2, 0, 0), PreconditionError);
  EXPECT_THROW(table.get(0, 2, 0), PreconditionError);
  EXPECT_THROW(table.get(0, 0, 2), PreconditionError);
  EXPECT_THROW(TrustLevelTable(0, 1, 1), PreconditionError);
}

TEST(TrustTable, VersionBumpsOnlyOnChange) {
  TrustLevelTable table(1, 1, 1);
  const auto v0 = table.version();
  table.set(0, 0, 0, TrustLevel::kC);
  const auto v1 = table.version();
  EXPECT_GT(v1, v0);
  table.set(0, 0, 0, TrustLevel::kC);  // no change
  EXPECT_EQ(table.version(), v1);
}

TEST(TrustTable, OfferedTrustLevelIsMinOverActivities) {
  TrustLevelTable table(1, 1, 3);
  table.set(0, 0, 0, TrustLevel::kE);
  table.set(0, 0, 1, TrustLevel::kB);
  table.set(0, 0, 2, TrustLevel::kD);
  const std::size_t all[] = {0, 1, 2};
  EXPECT_EQ(table.offered_trust_level(0, 0, all), TrustLevel::kB);
  const std::size_t some[] = {0, 2};
  EXPECT_EQ(table.offered_trust_level(0, 0, some), TrustLevel::kD);
  const std::size_t one[] = {0};
  EXPECT_EQ(table.offered_trust_level(0, 0, one), TrustLevel::kE);
}

TEST(TrustTable, OfferedTrustLevelRequiresActivities) {
  TrustLevelTable table(1, 1, 1);
  EXPECT_THROW(table.offered_trust_level(0, 0, {}), PreconditionError);
}

TEST(TrustTable, RandomizeStaysInOfferedRange) {
  TrustLevelTable table(3, 3, 5);
  Rng rng(3);
  table.randomize(rng);
  bool saw_not_a = false;
  for (std::size_t cd = 0; cd < 3; ++cd) {
    for (std::size_t rd = 0; rd < 3; ++rd) {
      for (std::size_t act = 0; act < 5; ++act) {
        const int v = to_numeric(table.get(cd, rd, act));
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 5);
        if (v != 1) saw_not_a = true;
      }
    }
  }
  EXPECT_TRUE(saw_not_a);
}

// ---------------------------------------------------------------- decay

TEST(Decay, NoDecayIsAlwaysOne) {
  NoDecay d;
  EXPECT_EQ(d.value(0.0), 1.0);
  EXPECT_EQ(d.value(1e9), 1.0);
  EXPECT_THROW(d.value(-1.0), PreconditionError);
}

TEST(Decay, ExponentialHalfLife) {
  ExponentialDecay d(100.0);
  EXPECT_NEAR(d.value(0.0), 1.0, 1e-12);
  EXPECT_NEAR(d.value(100.0), 0.5, 1e-12);
  EXPECT_NEAR(d.value(200.0), 0.25, 1e-12);
  EXPECT_THROW(ExponentialDecay(0.0), PreconditionError);
}

TEST(Decay, LinearHitsZeroAtLifetime) {
  LinearDecay d(50.0);
  EXPECT_NEAR(d.value(0.0), 1.0, 1e-12);
  EXPECT_NEAR(d.value(25.0), 0.5, 1e-12);
  EXPECT_EQ(d.value(50.0), 0.0);
  EXPECT_EQ(d.value(500.0), 0.0);
}

TEST(Decay, StepKeepsResidualWeight) {
  StepDecay d(10.0, 0.3);
  EXPECT_EQ(d.value(0.0), 1.0);
  EXPECT_EQ(d.value(10.0), 1.0);
  EXPECT_EQ(d.value(10.1), 0.3);
  EXPECT_THROW(StepDecay(1.0, 1.5), PreconditionError);
}

TEST(Decay, AllAreMonotoneNonIncreasing) {
  const auto decays = {make_no_decay(), make_exponential_decay(10.0),
                       make_linear_decay(10.0), make_step_decay(5.0, 0.2)};
  for (const auto& d : decays) {
    double prev = d->value(0.0);
    EXPECT_NEAR(prev, 1.0, 1e-12);
    for (double age = 0.5; age < 30.0; age += 0.5) {
      const double v = d->value(age);
      EXPECT_LE(v, prev + 1e-12);
      EXPECT_GE(v, 0.0);
      prev = v;
    }
  }
}

// ---------------------------------------------------------------- alliances

TEST(Alliance, SingletonsInitially) {
  AllianceGraph g(4);
  EXPECT_EQ(g.group_count(), 4u);
  EXPECT_TRUE(g.allied(2, 2));
  EXPECT_FALSE(g.allied(0, 1));
}

TEST(Alliance, AllyMergesTransitively) {
  AllianceGraph g(5);
  g.ally(0, 1);
  g.ally(1, 2);
  EXPECT_TRUE(g.allied(0, 2));
  EXPECT_FALSE(g.allied(0, 3));
  EXPECT_EQ(g.group_count(), 3u);
  EXPECT_EQ(g.group_size(0), 3u);
  EXPECT_EQ(g.group_size(3), 1u);
}

TEST(Alliance, AllyIsIdempotent) {
  AllianceGraph g(3);
  g.ally(0, 1);
  g.ally(0, 1);
  g.ally(1, 0);
  EXPECT_EQ(g.group_count(), 2u);
}

TEST(Alliance, BoundsChecked) {
  AllianceGraph g(2);
  EXPECT_THROW(g.ally(0, 2), PreconditionError);
  EXPECT_THROW(g.allied(2, 0), PreconditionError);
}

// ---------------------------------------------------------------- engine

TrustEngineConfig engine_config() {
  TrustEngineConfig cfg;
  cfg.alpha = 0.6;
  cfg.beta = 0.4;
  cfg.learning_rate = 0.5;
  return cfg;
}

TEST(TrustEngine, ValidatesConfig) {
  TrustEngineConfig bad = engine_config();
  bad.alpha = -1;
  EXPECT_THROW(TrustEngine(bad, 2, 1), PreconditionError);
  bad = engine_config();
  bad.alpha = 0;
  bad.beta = 0;
  EXPECT_THROW(TrustEngine(bad, 2, 1), PreconditionError);
  bad = engine_config();
  bad.learning_rate = 0;
  EXPECT_THROW(TrustEngine(bad, 2, 1), PreconditionError);
  EXPECT_THROW(TrustEngine(engine_config(), 0, 1), PreconditionError);
  EXPECT_THROW(TrustEngine(engine_config(), 2, 0), PreconditionError);
}

TEST(TrustEngine, StrangerGetsDefaultScore) {
  TrustEngine engine(engine_config(), 3, 1);
  EXPECT_EQ(engine.eventual_trust(0, 1, 0, 0.0), 1.0);
  EXPECT_EQ(engine.eventual_offered_level(0, 1, 0, 0.0), TrustLevel::kA);
}

TEST(TrustEngine, FirstTransactionSetsDirectTrust) {
  TrustEngine engine(engine_config(), 3, 1);
  engine.record_transaction({0, 1, 0, 10.0, 5.0});
  const auto rec = engine.direct_record(0, 1, 0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->level, 5.0);
  EXPECT_EQ(rec->count, 1u);
  EXPECT_EQ(engine.direct_trust(0, 1, 0, 10.0), 5.0);
}

TEST(TrustEngine, EwmaBlendsObservations) {
  TrustEngine engine(engine_config(), 2, 1);  // lr = 0.5, no decay
  engine.record_transaction({0, 1, 0, 0.0, 6.0});
  engine.record_transaction({0, 1, 0, 1.0, 2.0});
  // 0.5*6 + 0.5*2 = 4
  EXPECT_NEAR(*engine.direct_trust(0, 1, 0, 1.0), 4.0, 1e-12);
}

TEST(TrustEngine, DirectTrustDecaysWithAge) {
  TrustEngineConfig cfg = engine_config();
  cfg.decay = make_exponential_decay(10.0);
  TrustEngine engine(cfg, 2, 1);
  engine.record_transaction({0, 1, 0, 0.0, 4.0});
  EXPECT_NEAR(*engine.direct_trust(0, 1, 0, 0.0), 4.0, 1e-12);
  EXPECT_NEAR(*engine.direct_trust(0, 1, 0, 10.0), 2.0, 1e-12);
  EXPECT_THROW(engine.direct_trust(0, 1, 0, -1.0), PreconditionError);
}

TEST(TrustEngine, PerContextDecayOverrides) {
  TrustEngineConfig cfg = engine_config();
  cfg.decay = make_no_decay();
  cfg.context_decay[1] = make_exponential_decay(10.0);
  TrustEngine engine(cfg, 2, 2);
  engine.record_transaction({0, 1, 0, 0.0, 4.0});
  engine.record_transaction({0, 1, 1, 0.0, 4.0});
  // Context 0 keeps full weight forever; context 1 halves every 10 s.
  EXPECT_NEAR(*engine.direct_trust(0, 1, 0, 100.0), 4.0, 1e-12);
  EXPECT_NEAR(*engine.direct_trust(0, 1, 1, 10.0), 2.0, 1e-12);
}

TEST(TrustEngine, ContextDecayOverrideValidation) {
  TrustEngineConfig cfg = engine_config();
  cfg.context_decay[5] = make_no_decay();  // unknown context
  EXPECT_THROW(TrustEngine(cfg, 2, 2), PreconditionError);
  cfg = engine_config();
  cfg.context_decay[0] = nullptr;
  EXPECT_THROW(TrustEngine(cfg, 2, 2), PreconditionError);
}

TEST(TrustEngine, ReputationAveragesThirdParties) {
  TrustEngine engine(engine_config(), 4, 1);
  // Entities 1 and 2 both dealt with target 3; evaluator 0 has not.
  engine.record_transaction({1, 3, 0, 0.0, 6.0});
  engine.record_transaction({2, 3, 0, 0.0, 2.0});
  const auto rep = engine.reputation(0, 3, 0, 0.0);
  ASSERT_TRUE(rep.has_value());
  EXPECT_NEAR(*rep, 4.0, 1e-12);
}

TEST(TrustEngine, ReputationExcludesEvaluatorAndTarget) {
  TrustEngine engine(engine_config(), 4, 1);
  engine.record_transaction({0, 3, 0, 0.0, 6.0});  // evaluator's own view
  EXPECT_FALSE(engine.reputation(0, 3, 0, 0.0).has_value());
}

TEST(TrustEngine, EventualTrustBlendsAlphaBeta) {
  TrustEngine engine(engine_config(), 4, 1);
  engine.record_transaction({0, 3, 0, 0.0, 6.0});  // Θ = 6
  engine.record_transaction({1, 3, 0, 0.0, 1.0});  // Ω = 1
  EXPECT_NEAR(engine.eventual_trust(0, 3, 0, 0.0), 0.6 * 6 + 0.4 * 1, 1e-12);
}

TEST(TrustEngine, WeightsAreNormalized) {
  TrustEngineConfig cfg = engine_config();
  cfg.alpha = 3.0;  // same ratio as 0.6/0.4
  cfg.beta = 2.0;
  TrustEngine engine(cfg, 4, 1);
  engine.record_transaction({0, 3, 0, 0.0, 6.0});
  engine.record_transaction({1, 3, 0, 0.0, 1.0});
  EXPECT_NEAR(engine.eventual_trust(0, 3, 0, 0.0), 0.6 * 6 + 0.4 * 1, 1e-12);
}

TEST(TrustEngine, MissingComponentTakesFullWeight) {
  TrustEngine engine(engine_config(), 4, 1);
  engine.record_transaction({0, 3, 0, 0.0, 5.0});
  EXPECT_NEAR(engine.eventual_trust(0, 3, 0, 0.0), 5.0, 1e-12);  // Θ only
  engine.record_transaction({1, 2, 0, 0.0, 3.0});
  EXPECT_NEAR(engine.eventual_trust(0, 2, 0, 0.0), 3.0, 1e-12);  // Ω only
}

TEST(TrustEngine, OfferedLevelIsCappedAtE) {
  TrustEngine engine(engine_config(), 2, 1);
  engine.record_transaction({0, 1, 0, 0.0, 6.0});
  EXPECT_EQ(engine.eventual_offered_level(0, 1, 0, 0.0), TrustLevel::kE);
}

TEST(TrustEngine, AlliedRecommenderIsDiscounted) {
  TrustEngineConfig cfg = engine_config();
  cfg.alliance_discount = 0.25;
  TrustEngine engine(cfg, 4, 1);
  engine.alliances().ally(1, 3);  // recommender 1 allied with target 3
  engine.record_transaction({1, 3, 0, 0.0, 6.0});
  const auto rep = engine.reputation(0, 3, 0, 0.0);
  ASSERT_TRUE(rep.has_value());
  EXPECT_NEAR(*rep, 6.0 * 0.25, 1e-12);
  EXPECT_NEAR(engine.recommender_factor(0, 1, 3), 0.25, 1e-12);
  EXPECT_NEAR(engine.recommender_factor(0, 2, 3), 1.0, 1e-12);
}

TEST(TrustEngine, CollusionDiscountLimitsReputationInflation) {
  // Three colluders praise target 3 at 6.0; one honest entity reports 2.0.
  TrustEngineConfig cfg = engine_config();
  cfg.alliance_discount = 0.0;
  TrustEngine engine(cfg, 6, 1);
  for (EntityId z : {1u, 2u, 4u}) {
    engine.alliances().ally(z, 3);
    engine.record_transaction({z, 3, 0, 0.0, 6.0});
  }
  engine.record_transaction({5, 3, 0, 0.0, 2.0});
  const auto rep = engine.reputation(0, 3, 0, 0.0);
  ASSERT_TRUE(rep.has_value());
  // Colluders contribute 0; honest 2.0; average over 4 recommenders.
  EXPECT_NEAR(*rep, 2.0 / 4.0, 1e-12);
}

TEST(TrustEngine, LearnedRecommenderWeightsPunishLiars) {
  TrustEngineConfig cfg = engine_config();
  cfg.learn_recommender_weights = true;
  cfg.recommender_learning_rate = 0.5;
  TrustEngine engine(cfg, 4, 1);
  // Entity 1 claims target 2 is excellent; entity 3 claims it is poor.
  engine.record_transaction({1, 2, 0, 0.0, 6.0});
  engine.record_transaction({3, 2, 0, 0.0, 1.5});
  // Evaluator 0 experiences target 2 first-hand as poor, repeatedly.
  for (int i = 1; i <= 6; ++i) {
    engine.record_transaction({0, 2, 0, static_cast<double>(i), 1.0});
  }
  // The optimist's weight must now be well below the realist's.
  EXPECT_LT(engine.recommender_factor(0, 1, 2),
            engine.recommender_factor(0, 3, 2));
}

TEST(TrustEngine, RejectsBadTransactions) {
  TrustEngine engine(engine_config(), 3, 2);
  EXPECT_THROW(engine.record_transaction({0, 0, 0, 0.0, 3.0}),
               PreconditionError);  // self trust
  EXPECT_THROW(engine.record_transaction({0, 1, 5, 0.0, 3.0}),
               PreconditionError);  // unknown context
  EXPECT_THROW(engine.record_transaction({0, 9, 0, 0.0, 3.0}),
               PreconditionError);  // unknown entity
  EXPECT_THROW(engine.record_transaction({0, 1, 0, 0.0, 9.0}),
               PreconditionError);  // score off scale
  engine.record_transaction({0, 1, 0, 5.0, 3.0});
  EXPECT_THROW(engine.record_transaction({0, 1, 0, 4.0, 3.0}),
               PreconditionError);  // time went backwards
}

TEST(TrustEngine, ContextsAreIsolated) {
  TrustEngine engine(engine_config(), 3, 2);
  engine.record_transaction({0, 1, 0, 0.0, 6.0});
  EXPECT_FALSE(engine.direct_trust(0, 1, 1, 0.0).has_value());
  EXPECT_TRUE(engine.direct_trust(0, 1, 0, 0.0).has_value());
}

TEST(TrustEngine, TransactionCountAccumulates) {
  TrustEngine engine(engine_config(), 3, 1);
  EXPECT_EQ(engine.transaction_count(), 0u);
  engine.record_transaction({0, 1, 0, 0.0, 3.0});
  engine.record_transaction({1, 2, 0, 0.0, 3.0});
  EXPECT_EQ(engine.transaction_count(), 2u);
}

TEST(TrustEngine, PruneDropsStaleRecordsOnly) {
  TrustEngine engine(engine_config(), 4, 1);
  engine.record_transaction({0, 1, 0, 10.0, 4.0});
  engine.record_transaction({0, 2, 0, 100.0, 4.0});
  engine.record_transaction({1, 2, 0, 200.0, 4.0});
  EXPECT_EQ(engine.prune(50.0), 1u);  // only the t=10 record
  EXPECT_FALSE(engine.direct_record(0, 1, 0).has_value());
  EXPECT_TRUE(engine.direct_record(0, 2, 0).has_value());
  EXPECT_EQ(engine.prune(50.0), 0u);  // idempotent
  EXPECT_EQ(engine.prune(1000.0), 2u);
  EXPECT_EQ(engine.export_records().size(), 0u);
  // History counter is preserved.
  EXPECT_EQ(engine.transaction_count(), 3u);
}

// ---------------------------------------------------------------- report

TEST(TrustReport, RendersPerActivitySlice) {
  TrustLevelTable table(2, 2, 2);
  table.set(0, 0, 0, TrustLevel::kE);
  table.set(0, 1, 0, TrustLevel::kB);
  table.set(1, 0, 0, TrustLevel::kC);
  const TextTable out = render_table(table, 0);
  EXPECT_EQ(out.row_count(), 2u);
  const std::string text = out.to_string();
  EXPECT_NE(text.find("rd0"), std::string::npos);
  EXPECT_NE(text.find("cd1"), std::string::npos);
  EXPECT_NE(text.find("E"), std::string::npos);
  EXPECT_THROW(render_table(table, 2), PreconditionError);
}

TEST(TrustReport, SummaryTakesTheMinimumAcrossActivities) {
  TrustLevelTable table(1, 1, 3);
  table.set(0, 0, 0, TrustLevel::kE);
  table.set(0, 0, 1, TrustLevel::kB);
  table.set(0, 0, 2, TrustLevel::kD);
  const std::string text = render_table_summary(table).to_string();
  // The pair cell must show B (the min), not E.
  EXPECT_NE(text.find(" B "), std::string::npos);
}

// ---------------------------------------------------------------- agents

TEST(DomainTrustBridge, EntityMappingIsDisjoint) {
  DomainTrustBridge bridge(TrustEngineConfig{}, 3, 2, 4);
  EXPECT_EQ(bridge.cd_entity(0), 0u);
  EXPECT_EQ(bridge.cd_entity(2), 2u);
  EXPECT_EQ(bridge.rd_entity(0), 3u);
  EXPECT_EQ(bridge.rd_entity(1), 4u);
  EXPECT_THROW(bridge.cd_entity(3), PreconditionError);
  EXPECT_THROW(bridge.rd_entity(2), PreconditionError);
}

TEST(DomainTrustBridge, RefreshRequiresSignificantData) {
  DomainTrustBridge bridge(TrustEngineConfig{}, 1, 1, 1, /*min_transactions=*/3);
  TrustLevelTable table(1, 1, 1);
  bridge.observe_client_side(0, 0, 0, 1.0, 5.0);
  bridge.observe_resource_side(0, 0, 0, 2.0, 5.0);
  EXPECT_EQ(bridge.refresh(table, 3.0), 0u);  // only two observations
  bridge.observe_client_side(0, 0, 0, 3.0, 5.0);
  EXPECT_EQ(bridge.refresh(table, 4.0), 1u);
  EXPECT_GT(to_numeric(table.get(0, 0, 0)), 1);
}

TEST(DomainTrustBridge, SymmetricQuantifierTakesTheMin) {
  DomainTrustBridge bridge(TrustEngineConfig{}, 1, 1, 1, 1);
  TrustLevelTable table(1, 1, 1);
  // Client thinks the resource is excellent; resource thinks the client is
  // poor -> the stored symmetric level must reflect the poor direction.
  bridge.observe_client_side(0, 0, 0, 1.0, 6.0);
  bridge.observe_resource_side(0, 0, 0, 1.0, 2.0);
  bridge.refresh(table, 2.0);
  EXPECT_EQ(table.get(0, 0, 0), TrustLevel::kB);
}

TEST(DomainTrustBridge, RefreshIsIdempotentWithoutNewData) {
  DomainTrustBridge bridge(TrustEngineConfig{}, 2, 2, 2, 1);
  TrustLevelTable table(2, 2, 2);
  bridge.observe_client_side(0, 1, 0, 1.0, 4.0);
  bridge.observe_resource_side(1, 0, 0, 1.0, 4.0);
  EXPECT_GT(bridge.refresh(table, 2.0), 0u);
  EXPECT_EQ(bridge.refresh(table, 2.0), 0u);
}

TEST(DomainTrustBridge, RefreshValidatesTableShape) {
  DomainTrustBridge bridge(TrustEngineConfig{}, 2, 2, 2);
  TrustLevelTable wrong(1, 2, 2);
  EXPECT_THROW(bridge.refresh(wrong, 0.0), PreconditionError);
}

}  // namespace
}  // namespace gridtrust::trust
