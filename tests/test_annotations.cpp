// Thread-safety annotation smoke test.
//
// Two things are under test.  At compile time, this TU is built with
// -Wthread-safety -Werror=thread-safety under Clang (see
// tests/CMakeLists.txt), so the annotated primitives in common/sync.hpp
// must pass their own analysis when used idiomatically — a regression in
// the GT_* macro layer or the wrapper annotations breaks the build before
// any test runs.  At run time, the wrappers must behave exactly like the
// std primitives they wrap: the annotations are attributes only, with zero
// behavioral surface.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/annotations.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"

namespace gridtrust {
namespace {

/// The canonical annotated shape: every data member names its guard, every
/// boundary method declares what it acquires or excludes.  If the macros
/// ever stop expanding to real attributes under Clang, the analysis of
/// this class is what catches it.
class GuardedCounter {
 public:
  void add(int delta) GT_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    value_ += delta;
    ++updates_;
  }

  int value() const GT_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    return value_;
  }

  int updates() const GT_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    return updates_;
  }

 private:
  mutable Mutex mutex_;
  int value_ GT_GUARDED_BY(mutex_) = 0;
  int updates_ GT_GUARDED_BY(mutex_) = 0;
};

/// Reader/writer shape over SharedMutex.
class GuardedSnapshot {
 public:
  void publish(std::vector<int> values) GT_EXCLUDES(mutex_) {
    const WriterMutexLock lock(&mutex_);
    values_ = std::move(values);
  }

  std::size_t size() const GT_EXCLUDES(mutex_) {
    const ReaderMutexLock lock(&mutex_);
    return values_.size();
  }

 private:
  mutable SharedMutex mutex_;
  std::vector<int> values_ GT_GUARDED_BY(mutex_);
};

/// CondVar handoff: the explicit predicate loop from the sync.hpp doc
/// comment, with the guarded read inside the analyzed region.
class Latch {
 public:
  void open() GT_EXCLUDES(mutex_) {
    {
      const MutexLock lock(&mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

  void wait_open() GT_EXCLUDES(mutex_) {
    const MutexLock lock(&mutex_);
    while (!open_) cv_.wait(mutex_);
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  bool open_ GT_GUARDED_BY(mutex_) = false;
};

TEST(ThreadSafety, AnnotationsCompile) {
  // Concurrent mutation through every annotated primitive, driven by the
  // shared pool (the tree's only sanctioned concurrency source, GT004).
  constexpr std::size_t kItems = 256;
  GuardedCounter counter;
  GuardedSnapshot snapshot;
  Latch latch;
  std::atomic<std::size_t> waiters_released{0};

  ThreadPool pool(4);
  pool.parallel_for(kItems, [&](std::size_t i) {
    counter.add(1);
    if (i == 0) {
      snapshot.publish(std::vector<int>(17, 42));
      latch.open();
    } else if (i % 64 == 0) {
      latch.wait_open();
      waiters_released.fetch_add(1, std::memory_order_relaxed);
    }
  });

  EXPECT_EQ(counter.value(), static_cast<int>(kItems));
  EXPECT_EQ(counter.updates(), static_cast<int>(kItems));
  EXPECT_EQ(snapshot.size(), 17u);
  EXPECT_EQ(waiters_released.load(), 3u);

  // Manual lock()/unlock() paths (annotated on the wrapper itself).
  Mutex mutex;
  mutex.lock();
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();

  SharedMutex shared;
  shared.lock_shared();
  shared.unlock_shared();
  shared.lock();
  shared.unlock();
}

TEST(ThreadSafety, FirstErrorSlotKeepsLowestIndex) {
  // The deterministic-error contract parallel_for and run_sweep rely on:
  // whatever the interleaving, the lowest-index error wins.
  FirstErrorSlot slot;
  EXPECT_FALSE(slot.has_error());
  slot.rethrow_if_error();  // no-op when empty

  ThreadPool pool(4);
  pool.parallel_for(64, [&](std::size_t i) {
    if (i % 2 == 1) {
      slot.note(i, std::make_exception_ptr(
                       std::runtime_error("unit " + std::to_string(i))));
    }
  });

  EXPECT_TRUE(slot.has_error());
  try {
    slot.rethrow_if_error();
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "unit 1");
  }
}

TEST(ThreadSafety, AnnotationsAreZeroCost) {
  // The wrappers add attributes, not state.
  static_assert(sizeof(Mutex) == sizeof(std::mutex));
  static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex));
  static_assert(sizeof(MutexLock) == sizeof(void*));
  SUCCEED();
}

}  // namespace
}  // namespace gridtrust
