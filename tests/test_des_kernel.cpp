// Conformance and regression suite for the calendar-queue DES kernel
// rework (see docs/performance.md):
//   - CalendarQueue must reproduce the old binary heap's pop order exactly
//     (ReferenceHeapQueue is the frozen executable spec) across randomized
//     workloads, timestamp collisions, resizes, and far-future rollover;
//   - ObjectPool handles must survive reuse/reset with generation checks;
//   - InlineAction must store, relocate, and destroy closures correctly;
//   - the grid-scale driver must produce identical digests on the new and
//     the pre-rework kernel, and identical results from inside a thread
//     pool worker (the nested-parallel_for no-deadlock guarantee);
//   - the smoke lab manifest must stay byte-identical to the committed
//     baseline (the kernel swap is not allowed to move a single bit).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/fs.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "des/event_queue.hpp"
#include "des/reference_kernel.hpp"
#include "des/scale.hpp"
#include "des/simulator.hpp"
#include "lab/catalog.hpp"
#include "lab/engine.hpp"
#include "lab/manifest.hpp"

namespace gridtrust::des {
namespace {

// ------------------------------------------------- queue conformance

/// Pops everything from both queues (staged with the same nodes) and
/// requires identical sequences.  ReferenceHeapQueue ignores the intrusive
/// link, so the same node can sit in both queues at once.
void expect_same_drain(CalendarQueue& calendar, ReferenceHeapQueue& heap) {
  ASSERT_EQ(calendar.size(), heap.size());
  while (!heap.empty()) {
    EventNode* expected = heap.pop();
    EventNode* got = calendar.pop();
    ASSERT_EQ(got, expected)
        << "divergence at seq " << expected->seq << " time "
        << expected->time;
    got->next = nullptr;  // re-stage-able
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.pop(), nullptr);
}

std::vector<EventNode> make_nodes(std::size_t n) {
  std::vector<EventNode> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].seq = i;
    nodes[i].self = static_cast<PoolHandle>(i + 1);
  }
  return nodes;
}

TEST(CalendarConformance, RandomizedWorkloadsMatchTheHeap) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(derive_seed(seed, {0xc0fe}));
    std::vector<EventNode> nodes = make_nodes(2000);
    CalendarQueue calendar;
    ReferenceHeapQueue heap;
    for (auto& node : nodes) {
      // Mixed regimes: dense cluster, uniform spread, sparse far tail.
      const double pick = rng.uniform(0.0, 1.0);
      if (pick < 0.4) {
        node.time = rng.uniform(0.0, 1.0);
      } else if (pick < 0.9) {
        node.time = rng.uniform(0.0, 1e4);
      } else {
        node.time = rng.uniform(1e12, 1e15);
      }
      calendar.push(&node);
      heap.push(&node);
    }
    expect_same_drain(calendar, heap);
  }
}

TEST(CalendarConformance, InterleavedPushPopMatchesTheHeap) {
  Rng rng(99);
  std::vector<EventNode> nodes = make_nodes(4000);
  CalendarQueue calendar;
  ReferenceHeapQueue heap;
  std::size_t next = 0;
  double low_bound = 0.0;  // popped times are the floor for new pushes
  while (next < nodes.size() || !heap.empty()) {
    const bool can_push = next < nodes.size();
    if (can_push && (heap.empty() || rng.uniform(0.0, 1.0) < 0.55)) {
      EventNode& node = nodes[next++];
      node.time = low_bound + rng.exponential(3.0);
      calendar.push(&node);
      heap.push(&node);
    } else {
      EventNode* expected = heap.pop();
      EventNode* got = calendar.pop();
      ASSERT_EQ(got, expected);
      got->next = nullptr;
      low_bound = expected->time;
    }
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(CalendarConformance, TimestampCollisionsPopInScheduleOrder) {
  std::vector<EventNode> nodes = make_nodes(512);
  CalendarQueue calendar;
  // Four distinct times, each shared by 128 events pushed out of order.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].time = static_cast<double>(i % 4) * 10.0;
    calendar.push(&nodes[i]);
  }
  std::uint64_t last_seq = 0;
  double last_time = -1.0;
  while (EventNode* node = calendar.pop()) {
    if (node->time == last_time) {
      EXPECT_LT(last_seq, node->seq) << "FIFO tie-break violated";
    } else {
      EXPECT_LT(last_time, node->time);
    }
    last_time = node->time;
    last_seq = node->seq;
  }
}

TEST(CalendarConformance, EarlierPushAfterFarFutureScanRewindsTheCursor) {
  std::vector<EventNode> nodes = make_nodes(3);
  CalendarQueue calendar;
  nodes[0].time = 1e9;
  calendar.push(&nodes[0]);
  EXPECT_EQ(calendar.pop(), &nodes[0]);  // cursor jumped far ahead
  nodes[0].next = nullptr;
  nodes[1].time = 2e9;
  calendar.push(&nodes[1]);
  nodes[2].time = 1.0;  // earlier than the cursor: push must rewind
  calendar.push(&nodes[2]);
  EXPECT_EQ(calendar.pop(), &nodes[2]);
  EXPECT_EQ(calendar.pop(), &nodes[1]);
}

TEST(CalendarConformance, ResizeAndRolloverEdges) {
  // Growth through several resizes with adversarial times: zero, denormal
  // gaps, huge magnitudes, and +infinity all keep strict order.
  std::vector<EventNode> nodes = make_nodes(1500);
  CalendarQueue calendar;
  ReferenceHeapQueue heap;
  Rng rng(7);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    switch (i % 5) {
      case 0: nodes[i].time = 0.0; break;
      case 1: nodes[i].time = rng.uniform(0.0, 1e-9); break;
      case 2: nodes[i].time = rng.uniform(0.0, 1e300); break;
      case 3: nodes[i].time = std::numeric_limits<double>::infinity(); break;
      default: nodes[i].time = rng.uniform(1e6, 2e6); break;
    }
    calendar.push(&nodes[i]);
    heap.push(&nodes[i]);
  }
  EXPECT_GE(calendar.resizes(), 1u);
  expect_same_drain(calendar, heap);
}

TEST(CalendarConformance, PopIfAtMostHonorsTheBound) {
  std::vector<EventNode> nodes = make_nodes(10);
  CalendarQueue calendar;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].time = static_cast<double>(i);
    calendar.push(&nodes[i]);
  }
  EXPECT_EQ(calendar.pop_if_at_most(-1.0), nullptr);
  EXPECT_EQ(calendar.pop_if_at_most(3.5), &nodes[0]);
  nodes[0].next = nullptr;
  EXPECT_EQ(calendar.size(), 9u);
  calendar.clear();
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.pop(), nullptr);
}

// ------------------------------------------------- arena / ObjectPool

struct Tracked {
  static int live;
  int value = 0;
  explicit Tracked(int v) : value(v) { ++live; }
  ~Tracked() { --live; }
};
int Tracked::live = 0;

TEST(ObjectPool, ReusesSlotsWithFreshGenerations) {
  ObjectPool<Tracked> pool(16);
  const PoolHandle a = pool.allocate(1);
  EXPECT_TRUE(pool.valid(a));
  EXPECT_EQ(pool.get(a).value, 1);
  pool.release(a);
  EXPECT_FALSE(pool.valid(a)) << "stale handle must go invalid";
  const PoolHandle b = pool.allocate(2);
  EXPECT_NE(a, b) << "recycled slot must carry a new generation";
  EXPECT_TRUE(pool.valid(b));
  EXPECT_FALSE(pool.valid(a));
  EXPECT_EQ(pool.capacity(), 1u) << "slot must be recycled, not appended";
  EXPECT_THROW(pool.release(a), PreconditionError);
  pool.release(b);
  EXPECT_EQ(Tracked::live, 0);
}

TEST(ObjectPool, NullHandleIsNeverValid) {
  ObjectPool<Tracked> pool;
  EXPECT_FALSE(pool.valid(kNullPoolHandle));
  EXPECT_FALSE(pool.valid(12345));
}

TEST(ObjectPool, ResetDestroysLiveObjectsAndKeepsSlabs) {
  ObjectPool<Tracked> pool(8);
  std::vector<PoolHandle> handles;
  for (int i = 0; i < 20; ++i) handles.push_back(pool.allocate(i));
  EXPECT_EQ(Tracked::live, 20);
  EXPECT_EQ(pool.slabs(), 3u);  // ceil(20 / 8)
  pool.release(handles[7]);
  pool.release(handles[3]);
  pool.reset();
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.slabs(), 3u) << "reset keeps slab storage warm";
  for (const PoolHandle h : handles) EXPECT_FALSE(pool.valid(h));
  // Post-reset allocation order is deterministic front-to-back, regardless
  // of the pre-reset release pattern.
  const PoolHandle first = pool.allocate(100);
  const PoolHandle second = pool.allocate(101);
  EXPECT_EQ(first & 0xffffffffu, 1u);
  EXPECT_EQ(second & 0xffffffffu, 2u);
}

// ------------------------------------------------- InlineAction

TEST(InlineAction, StoresSmallCallablesInline) {
  InlineAction action;
  EXPECT_TRUE(action.empty());
  int hits = 0;
  action.emplace([&hits] { ++hits; });
  EXPECT_FALSE(action.empty());
  action.invoke();
  action.invoke();
  EXPECT_EQ(hits, 2);
  action.reset();
  EXPECT_TRUE(action.empty());
}

TEST(InlineAction, RelocatesAndDestroysExactlyOnce) {
  struct Probe {
    int* destroyed;
    int* calls;
    explicit Probe(int* d, int* c) : destroyed(d), calls(c) {}
    Probe(Probe&& other) noexcept
        : destroyed(other.destroyed), calls(other.calls) {
      other.destroyed = nullptr;
      other.calls = nullptr;
    }
    ~Probe() {
      if (destroyed != nullptr) ++*destroyed;
    }
    void operator()() const { ++*calls; }
  };
  int destroyed = 0;
  int calls = 0;
  {
    InlineAction a;
    a.emplace(Probe(&destroyed, &calls));
    InlineAction b;
    a.relocate_to(b);
    EXPECT_TRUE(a.empty());
    b.invoke();
  }
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(destroyed, 1) << "moved-from husks must not double-destroy";
}

TEST(InlineAction, OversizedCapturesFallBackToStdFunction) {
  struct Big {
    double payload[16];  // 128 B, well past kBufSize
  };
  Big big{};
  big.payload[0] = 42.0;
  double seen = 0.0;
  InlineAction action;
  action.emplace([big, &seen] { seen = big.payload[0]; });
  action.invoke();
  EXPECT_EQ(seen, 42.0);
}

// ------------------------------------------------- cross-kernel digests

TEST(ScaleConformance, NewAndOldKernelsProduceIdenticalRuns) {
  ScaleScenarioParams params;
  params.tasks = 4000;
  params.machines = 64;
  params.domains = 8;
  params.arrival_rate = 100.0;
  params.seed = 20020815;
  ScaleScenario on_new = generate_scale_scenario(params);
  ScaleScenario on_old = generate_scale_scenario(params);
  const ScaleResult fresh = run_scale_scenario(on_new);
  const ScaleResult reference = run_scale_scenario_reference(on_old);
  EXPECT_EQ(fresh.digest, reference.digest)
      << "calendar kernel diverged from the pre-rework heap kernel";
  EXPECT_EQ(fresh.events, reference.events);
  EXPECT_EQ(fresh.tasks_completed, reference.tasks_completed);
  EXPECT_EQ(fresh.tasks_completed, params.tasks);
  EXPECT_EQ(fresh.max_queue_depth, reference.max_queue_depth);
  EXPECT_EQ(fresh.makespan, reference.makespan);
}

TEST(ScaleConformance, ScenarioGenerationIsWorkerCountIndependent) {
  const ScaleScenarioParams params = small_scale();
  const ScaleScenario a = generate_scale_scenario(params);
  const ScaleScenario b = generate_scale_scenario(params);
  EXPECT_EQ(a.machine_domain, b.machine_domain);
  EXPECT_EQ(a.domain_trust, b.domain_trust);
  EXPECT_EQ(a.domain_speed, b.domain_speed);
}

TEST(ScaleConformance, GeneratorInsideAPoolWorkerDoesNotDeadlock) {
  // A sweep worker generating a scenario re-enters parallel_for; the pool
  // must fall back to inline execution instead of deadlocking on itself.
  const ScaleScenarioParams params = small_scale();
  const ScaleScenario outside = generate_scale_scenario(params);
  std::vector<ScaleScenario> inside(4);
  ThreadPool::shared().parallel_for(inside.size(), [&](std::size_t i) {
    inside[i] = generate_scale_scenario(params);
  });
  for (const ScaleScenario& s : inside) {
    EXPECT_EQ(s.machine_domain, outside.machine_domain);
    EXPECT_EQ(s.domain_trust, outside.domain_trust);
    EXPECT_EQ(s.domain_speed, outside.domain_speed);
  }
}

// ------------------------------------------------- smoke byte-identity

TEST(SmokeRegression, KernelReworkKeepsTheManifestByteIdentical) {
  const lab::SweepSpec* spec = lab::find_spec("smoke");
  ASSERT_NE(spec, nullptr);
  lab::Manifest fresh = lab::run_sweep(*spec).manifest;
  lab::Manifest baseline = lab::parse_manifest(read_file(
      std::string(GRIDTRUST_SOURCE_DIR) + "/baselines/smoke.json"));
  // git_rev is stamped at runtime and legitimately differs between the
  // committing revision and the test run; every other byte must match.
  fresh.git_rev = "pinned";
  baseline.git_rev = "pinned";
  EXPECT_EQ(lab::to_json(fresh), lab::to_json(baseline))
      << "the DES kernel rework moved bytes in the smoke manifest; the "
         "calendar queue must replay the exact (time, seq) order";
}

}  // namespace
}  // namespace gridtrust::des
