// Tests for the support library: RNG, statistics, tables, CLI, thread pool,
// filesystem/retry helpers, units, and error handling.
#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/fs.hpp"
#include "common/log.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace gridtrust {
namespace {

// ---------------------------------------------------------------- error

TEST(Error, RequireThrowsPreconditionError) {
  EXPECT_THROW(GT_REQUIRE(false, "boom"), PreconditionError);
}

TEST(Error, RequirePassesOnTrue) {
  EXPECT_NO_THROW(GT_REQUIRE(true, "fine"));
}

TEST(Error, AssertThrowsInvariantError) {
  EXPECT_THROW(GT_ASSERT(false), InvariantError);
}

TEST(Error, MessageContainsContext) {
  try {
    GT_REQUIRE(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, StreamsAreIndependentAndDeterministic) {
  Rng parent(7);
  Rng s1 = parent.stream(1);
  Rng s1b = Rng(7).stream(1);
  Rng s2 = parent.stream(2);
  int same12 = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s1(), s1b());
    (void)s2;
  }
  Rng c1 = Rng(7).stream(1);
  Rng c2 = Rng(7).stream(2);
  for (int i = 0; i < 100; ++i) {
    if (c1() == c2()) ++same12;
  }
  EXPECT_LT(same12, 5);
}

TEST(Rng, StreamDoesNotAdvanceParent) {
  Rng a(9);
  Rng b(9);
  (void)a.stream(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(23);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, UniformIntUnbiased) {
  Rng rng(31);
  std::array<int, 6> counts{};
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(rng.uniform_int(0, 5))]++;
  }
  for (const int c : counts) EXPECT_NEAR(c, n / 6, n / 60);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
  EXPECT_THROW(rng.index(0), PreconditionError);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(41);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(43);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(47);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, BernoulliRate) {
  Rng rng(53);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), PreconditionError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(61);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_indices(10, 4);
    EXPECT_EQ(sample.size(), 4u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 4u);
    for (const std::size_t s : sample) EXPECT_LT(s, 10u);
  }
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(67);
  const auto sample = rng.sample_indices(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
  EXPECT_THROW(rng.sample_indices(3, 4), PreconditionError);
}

TEST(Rng, SplitMix64KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 123;
  std::uint64_t s2 = 123;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> xs = {3.0, 1.5, -2.0, 8.25, 4.0, 4.0, 0.5};
  RunningStats s;
  for (const double x : xs) s.add(x);
  const double mean =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  double m2 = 0;
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), m2 / (static_cast<double>(xs.size()) - 1), 1e-12);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_EQ(s.min(), -2.0);
  EXPECT_EQ(s.max(), 8.25);
  EXPECT_NEAR(s.sum(), std::accumulate(xs.begin(), xs.end(), 0.0), 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(71);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5, 2);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 2.0, 1e-12);
}

TEST(RunningStats, SingleObservation) {
  RunningStats s;
  s.add(4.2);
  EXPECT_EQ(s.mean(), 4.2);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(Stats, TCritical95KnownValues) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.960, 1e-3);
  EXPECT_EQ(t_critical_95(0), 0.0);
}

TEST(Stats, TCriticalIsMonotoneNonIncreasing) {
  double prev = t_critical_95(1);
  for (std::size_t df = 2; df < 200; ++df) {
    const double t = t_critical_95(df);
    EXPECT_LE(t, prev + 1e-12) << "df=" << df;
    prev = t;
  }
}

TEST(Stats, PercentImprovement) {
  EXPECT_NEAR(percent_improvement(100.0, 63.0), 37.0, 1e-12);
  EXPECT_NEAR(percent_improvement(50.0, 75.0), -50.0, 1e-12);
  EXPECT_THROW(percent_improvement(0.0, 1.0), PreconditionError);
}

TEST(Stats, MeanOf) {
  EXPECT_NEAR(mean_of({1.0, 2.0, 3.0}), 2.0, 1e-12);
  EXPECT_THROW(mean_of({}), PreconditionError);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_NEAR(percentile(xs, 0), 10.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 100), 50.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 50), 30.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 25), 20.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 12.5), 15.0, 1e-12);  // between 10 and 20
}

TEST(Stats, PercentileIgnoresInputOrder) {
  EXPECT_NEAR(percentile({50, 10, 40, 20, 30}, 50), 30.0, 1e-12);
}

TEST(Stats, PercentileSingletonAndValidation) {
  EXPECT_EQ(percentile({7.0}, 95), 7.0);
  EXPECT_THROW(percentile({}, 50), PreconditionError);
  EXPECT_THROW(percentile({1.0}, -1), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 101), PreconditionError);
}

TEST(Stats, PercentileIsMonotoneInP) {
  Rng rng(83);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(0, 10));
  double prev = percentile(xs, 0);
  for (double p = 5; p <= 100; p += 5) {
    const double v = percentile(xs, p);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(Stats, PairedComparisonBasics) {
  const std::vector<double> base = {10, 12, 11, 13, 10};
  const std::vector<double> treat = {7, 9, 8, 10, 7};
  const PairedComparison cmp = paired_comparison(base, treat);
  EXPECT_NEAR(cmp.mean_diff, 3.0, 1e-12);
  EXPECT_NEAR(cmp.improvement_pct,
              percent_improvement(cmp.mean_base, cmp.mean_treat), 1e-12);
  EXPECT_TRUE(cmp.significant);  // constant difference of 3, zero variance
}

TEST(Stats, PairedComparisonInsignificantWhenNoisy) {
  const std::vector<double> base = {10, 2, 14, 3};
  const std::vector<double> treat = {2, 10, 3, 14};
  const PairedComparison cmp = paired_comparison(base, treat);
  EXPECT_FALSE(cmp.significant);
}

TEST(Stats, PairedComparisonValidation) {
  EXPECT_THROW(paired_comparison({}, {}), PreconditionError);
  EXPECT_THROW(paired_comparison({1.0}, {1.0, 2.0}), PreconditionError);
}

// ---------------------------------------------------------------- table

TEST(Table, GroupsThousands) {
  EXPECT_EQ(format_grouped(5817.38, 2), "5,817.38");
  EXPECT_EQ(format_grouped(1234567.891, 2), "1,234,567.89");
  EXPECT_EQ(format_grouped(999.0, 0), "999");
  EXPECT_EQ(format_grouped(1000.0, 0), "1,000");
  EXPECT_EQ(format_grouped(0.5, 2), "0.50");
  EXPECT_EQ(format_grouped(-1234.5, 1), "-1,234.5");
  EXPECT_EQ(format_grouped(0.0, 2), "0.00");
}

TEST(Table, FormatPercent) {
  EXPECT_EQ(format_percent(36.99), "36.99%");
  EXPECT_EQ(format_percent(-3.5), "-3.50%");
}

TEST(Table, RendersHeadersAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, TitleAppearsAboveTable) {
  TextTable t({"c"});
  t.set_title("Table 9000");
  t.add_row({"x"});
  EXPECT_EQ(t.to_string().rfind("Table 9000", 0), 0u);
}

TEST(Table, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(TextTable(std::vector<std::string>{}), PreconditionError);
}

TEST(Table, RejectsBadAlignmentCount) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.set_alignments({Align::kLeft}), PreconditionError);
}

TEST(Table, CsvEscapesSpecials) {
  TextTable t({"x", "y"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, MarkdownRendering) {
  TextTable t({"name", "value"});
  t.set_title("Caption");
  t.set_alignments({Align::kLeft, Align::kRight});
  t.add_row({"a|b", "1"});
  t.add_separator();
  t.add_row({"c", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("**Caption**"), std::string::npos);
  EXPECT_NE(md.find("| name | value |"), std::string::npos);
  EXPECT_NE(md.find("| --- | ---: |"), std::string::npos);
  EXPECT_NE(md.find("a\\|b"), std::string::npos);  // pipe escaped
  EXPECT_NE(md.find("| c | 2 |"), std::string::npos);
}

TEST(Table, SeparatorRowsRender) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.to_string();
  // 5 horizontal lines: top, under header, separator, bottom... count '+'
  std::size_t lines = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') ++lines;
  }
  EXPECT_EQ(lines, 4u);
}

TEST(Table, StreamOperatorMatchesToString) {
  TextTable t({"a"});
  t.add_row({"1"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

// ---------------------------------------------------------------- cli

TEST(Cli, ParsesAllForms) {
  CliParser cli("prog", "test");
  cli.add_int("count", 5, "a count");
  cli.add_double("rate", 1.5, "a rate");
  cli.add_string("name", "x", "a name");
  cli.add_flag("verbose", "chatty");
  const char* argv[] = {"prog", "--count=7", "--rate", "2.25", "--name=abc",
                        "--verbose"};
  cli.parse(6, argv);
  EXPECT_EQ(cli.get_int("count"), 7);
  EXPECT_EQ(cli.get_double("rate"), 2.25);
  EXPECT_EQ(cli.get_string("name"), "abc");
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_TRUE(cli.was_set("count"));
}

TEST(Cli, DefaultsApply) {
  CliParser cli("prog", "test");
  cli.add_int("count", 5, "a count");
  cli.add_flag("verbose", "chatty");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_int("count"), 5);
  EXPECT_FALSE(cli.get_flag("verbose"));
  EXPECT_FALSE(cli.was_set("count"));
}

TEST(Cli, RejectsUnknownFlag) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(cli.parse(2, argv), PreconditionError);
}

TEST(Cli, RejectsMalformedNumbers) {
  CliParser cli("prog", "test");
  cli.add_int("count", 5, "a count");
  const char* argv[] = {"prog", "--count=7x"};
  EXPECT_THROW(cli.parse(2, argv), PreconditionError);
}

TEST(Cli, RejectsMissingValue) {
  CliParser cli("prog", "test");
  cli.add_int("count", 5, "a count");
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW(cli.parse(2, argv), PreconditionError);
}

TEST(Cli, RejectsDuplicateRegistration) {
  CliParser cli("prog", "test");
  cli.add_int("count", 5, "a count");
  EXPECT_THROW(cli.add_flag("count", "again"), PreconditionError);
}

TEST(Cli, RejectsTypeMismatchOnGet) {
  CliParser cli("prog", "test");
  cli.add_int("count", 5, "a count");
  EXPECT_THROW(cli.get_string("count"), PreconditionError);
  EXPECT_THROW(cli.get_int("missing"), PreconditionError);
}

TEST(Cli, UsageListsFlags) {
  CliParser cli("prog", "does things");
  cli.add_int("count", 5, "a count");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("a count"), std::string::npos);
  EXPECT_NE(usage.find("does things"), std::string::npos);
}

TEST(Cli, BooleanExplicitValues) {
  CliParser cli("prog", "test");
  cli.add_flag("on", "x");
  const char* argv[] = {"prog", "--on=false"};
  cli.parse(2, argv);
  EXPECT_FALSE(cli.get_flag("on"));
}

// ---------------------------------------------------------------- thread pool

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> x{0};
  auto fut = pool.submit([&] { x = 42; });
  fut.get();
  EXPECT_EQ(x.load(), 42);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(50,
                                 [&](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("13");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, WorkersSurviveBodyFailures) {
  // A throw must not kill the claiming worker's loop: every index is still
  // attempted even when many bodies fail, on a pool of any size.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(200);
  EXPECT_THROW(pool.parallel_for(200,
                                 [&](std::size_t i) {
                                   hits[i]++;
                                   if (i % 4 == 0) {
                                     throw std::runtime_error(
                                         std::to_string(i));
                                   }
                                 }),
               std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexFailure) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 7 || i == 63) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "7");
  }
}

// ---------------------------------------------------------------- fs

TEST(Fs, AtomicWriteFileWritesAndOverwrites) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "gridtrust_fs_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "target.json").string();

  atomic_write_file(path, "first");
  EXPECT_EQ(read_file(path), "first");
  atomic_write_file(path, "second, longer content\n");
  EXPECT_EQ(read_file(path), "second, longer content\n");

  // No temp droppings left behind.
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(Fs, AtomicWriteFileFailsCleanlyIntoMissingDirectory) {
  const std::string path = (std::filesystem::temp_directory_path() /
                            "gridtrust_fs_test_missing" / "deep" / "x.json")
                               .string();
  EXPECT_THROW(atomic_write_file(path, "content"), PreconditionError);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(Fs, ReadFileThrowsOnMissing) {
  EXPECT_THROW((void)read_file("/nonexistent/gridtrust/file"),
               PreconditionError);
}

TEST(Fs, AtomicWriteFileFsyncsTheFileAndItsParentDirectory) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "gridtrust_fs_sync_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const FsSyncStats before = fs_sync_stats();
  atomic_write_file((dir / "durable.json").string(), "payload");
  const FsSyncStats after = fs_sync_stats();
  // One fsync for the temp file's data, one for the parent directory's
  // entry table — both must actually be on the success path.
  EXPECT_EQ(after.file_syncs, before.file_syncs + 1);
  EXPECT_EQ(after.dir_syncs, before.dir_syncs + 1);
  EXPECT_EQ(read_file((dir / "durable.json").string()), "payload");

  // The failure path never reaches either sync.
  const FsSyncStats pre_fail = fs_sync_stats();
  EXPECT_THROW(
      atomic_write_file((dir / "missing" / "x.json").string(), "content"),
      PreconditionError);
  const FsSyncStats post_fail = fs_sync_stats();
  EXPECT_EQ(post_fail.file_syncs, pre_fail.file_syncs);
  EXPECT_EQ(post_fail.dir_syncs, pre_fail.dir_syncs);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------- retry

TEST(Retry, ClassifiesStandardExceptionFamilies) {
  const auto classify = [](auto&& make) {
    try {
      make();
    } catch (...) {
      return classify_error(std::current_exception());
    }
    return ErrorClass::kUnknown;
  };
  EXPECT_EQ(classify([] { throw PreconditionError("p"); }),
            ErrorClass::kPrecondition);
  EXPECT_EQ(classify([] { throw InvariantError("i"); }),
            ErrorClass::kInvariant);
  EXPECT_EQ(classify([] { throw std::bad_alloc(); }), ErrorClass::kResource);
  EXPECT_EQ(classify([]() {
              throw std::system_error(
                  std::make_error_code(std::errc::io_error));
            }),
            ErrorClass::kResource);
  EXPECT_EQ(classify([] { throw std::runtime_error("r"); }),
            ErrorClass::kUnknown);
}

TEST(Retry, ErrorClassStringsRoundTrip) {
  for (const ErrorClass c :
       {ErrorClass::kPrecondition, ErrorClass::kInvariant,
        ErrorClass::kResource, ErrorClass::kTimeout, ErrorClass::kUnknown}) {
    EXPECT_EQ(parse_error_class(to_string(c)), c);
  }
  EXPECT_THROW((void)parse_error_class("bogus"), PreconditionError);
}

TEST(Retry, BackoffIsExponentialCappedAndSkippedForDeterministic) {
  RetryPolicy policy;
  policy.backoff_initial_ms = 10;
  policy.backoff_factor = 2.0;
  policy.backoff_max_ms = 50;
  EXPECT_EQ(policy.backoff_ms(1, ErrorClass::kResource), 10u);
  EXPECT_EQ(policy.backoff_ms(2, ErrorClass::kResource), 20u);
  EXPECT_EQ(policy.backoff_ms(3, ErrorClass::kResource), 40u);
  EXPECT_EQ(policy.backoff_ms(4, ErrorClass::kResource), 50u);  // capped
  EXPECT_EQ(policy.backoff_ms(9, ErrorClass::kTimeout), 50u);
  // Deterministic classes re-run immediately: sleeping cannot change a
  // pure function's outcome.
  EXPECT_EQ(policy.backoff_ms(1, ErrorClass::kPrecondition), 0u);
  EXPECT_EQ(policy.backoff_ms(5, ErrorClass::kInvariant), 0u);
}

TEST(Retry, ClassifyErrnoMapsExhaustionToResource) {
  EXPECT_EQ(classify_errno(ENOSPC), ErrorClass::kResource);
  EXPECT_EQ(classify_errno(EMFILE), ErrorClass::kResource);
  EXPECT_EQ(classify_errno(ENFILE), ErrorClass::kResource);
  EXPECT_EQ(classify_errno(EAGAIN), ErrorClass::kResource);
  EXPECT_EQ(classify_errno(ENOMEM), ErrorClass::kResource);
  EXPECT_EQ(classify_errno(EINTR), ErrorClass::kResource);
  EXPECT_EQ(classify_errno(ETIMEDOUT), ErrorClass::kTimeout);
  EXPECT_EQ(classify_errno(EINVAL), ErrorClass::kUnknown);
  EXPECT_EQ(classify_errno(0), ErrorClass::kUnknown);
}

TEST(Retry, SystemErrorsClassifyThroughTheirErrno) {
  const auto classify = [](auto&& make) {
    try {
      make();
    } catch (...) {
      return classify_error(std::current_exception());
    }
    return ErrorClass::kUnknown;
  };
  EXPECT_EQ(classify([] {
              throw std::system_error(ENOSPC, std::generic_category(), "w");
            }),
            ErrorClass::kResource);
  EXPECT_EQ(classify([] {
              throw std::system_error(ETIMEDOUT, std::generic_category(), "w");
            }),
            ErrorClass::kTimeout);
}

TEST(Retry, ErrnoTextInPlainExceptionsClassifiesResource) {
  // An out-of-disk failure smuggled through a runtime_error (a wrapped
  // strerror message) must still triage as transient resource pressure.
  const auto classify = [](const std::string& what) {
    try {
      throw std::runtime_error(what);
    } catch (...) {
      return classify_error(std::current_exception());
    }
  };
  EXPECT_EQ(classify("write foo: No space left on device"),
            ErrorClass::kResource);
  EXPECT_EQ(classify("open bar: Too many open files"), ErrorClass::kResource);
  EXPECT_EQ(classify("read: Resource temporarily unavailable"),
            ErrorClass::kResource);
  EXPECT_EQ(classify("mmap: Cannot allocate memory"), ErrorClass::kResource);
  EXPECT_EQ(classify("something else entirely"), ErrorClass::kUnknown);
}

TEST(Retry, SeededBackoffJitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.backoff_initial_ms = 100;
  policy.backoff_factor = 2.0;
  policy.backoff_max_ms = 1000;
  policy.jitter_frac = 0.5;
  for (std::size_t idx = 1; idx <= 4; ++idx) {
    const std::uint64_t base = policy.backoff_ms(idx, ErrorClass::kResource);
    const std::uint64_t a =
        policy.backoff_ms(idx, ErrorClass::kResource, 1234);
    // Same (seed, attempt) -> same delay: retry storms de-synchronize
    // deterministically, not randomly.
    EXPECT_EQ(a, policy.backoff_ms(idx, ErrorClass::kResource, 1234));
    EXPECT_GE(a, base / 2);
    EXPECT_LE(a, base);
  }
  // Different seeds spread out; deterministic classes still never sleep.
  EXPECT_NE(policy.backoff_ms(1, ErrorClass::kResource, 1),
            policy.backoff_ms(1, ErrorClass::kResource, 2));
  EXPECT_EQ(policy.backoff_ms(1, ErrorClass::kPrecondition, 7), 0u);
  // jitter_frac = 0 (the default) reproduces the unjittered schedule.
  policy.jitter_frac = 0.0;
  EXPECT_EQ(policy.backoff_ms(2, ErrorClass::kResource, 42),
            policy.backoff_ms(2, ErrorClass::kResource));
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 999u * 1000u / 2);
}

// ---------------------------------------------------------------- log

TEST(Log, LevelThresholding) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // Below-threshold messages are dropped without touching the stream; the
  // call must simply not crash (output goes to stderr, not asserted here).
  log_debug("dropped ", 42);
  log_info("dropped too");
  set_log_level(LogLevel::kOff);
  log_error("also dropped at kOff");
  set_log_level(saved);
}

TEST(Log, ConcatFormatsMixedArguments) {
  EXPECT_EQ(detail::concat("x=", 3, ", y=", 2.5), "x=3, y=2.5");
  EXPECT_EQ(detail::concat(), "");
}

// ---------------------------------------------------------------- units

TEST(Units, TransferTimeBasics) {
  const Seconds t = transfer_time(Megabytes(100), MegabytesPerSecond(10));
  EXPECT_NEAR(t.value(), 10.0, 1e-12);
  EXPECT_THROW(transfer_time(Megabytes(1), MegabytesPerSecond(0)),
               PreconditionError);
}

TEST(Units, BitsToBytesConversion) {
  const MegabytesPerSecond r =
      to_megabytes_per_second(MegabitsPerSecond(100));
  EXPECT_NEAR(r.value(), 12.5, 1e-12);
}

TEST(Units, ArithmeticAndComparison) {
  const Seconds a(2.0);
  const Seconds b(3.0);
  EXPECT_NEAR((a + b).value(), 5.0, 1e-12);
  EXPECT_NEAR((b - a).value(), 1.0, 1e-12);
  EXPECT_NEAR((a * 2.0).value(), 4.0, 1e-12);
  EXPECT_NEAR((2.0 * a).value(), 4.0, 1e-12);
  EXPECT_NEAR((b / 3.0).value(), 1.0, 1e-12);
  EXPECT_NEAR(b / a, 1.5, 1e-12);
  EXPECT_LT(a, b);
  Seconds c(1.0);
  c += a;
  EXPECT_NEAR(c.value(), 3.0, 1e-12);
  c -= a;
  EXPECT_NEAR(c.value(), 1.0, 1e-12);
}

}  // namespace
}  // namespace gridtrust
