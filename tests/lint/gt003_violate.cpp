// gt-lint-fixture: path=src/sim/seedy.cpp expect=GT003:9,GT003:10,GT003:11
// GT003: raw standard-library engines and naked seed literals.
#include <cstdlib>
#include <random>

#include "common/rng.hpp"

unsigned roll() {
  std::mt19937 gen(12345);
  srand(42);
  gridtrust::Rng rng(0x9e3779b97f4a7c15ULL);
  return gen() + static_cast<unsigned>(rng());
}
