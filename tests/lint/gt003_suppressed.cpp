// gt-lint-fixture: path=src/sim/seedy_suppressed.cpp expect=none
// GT003 suppressed: a documented golden-vector test constant.
#include "common/rng.hpp"

unsigned golden_vector() {
  // gt-lint: allow(GT003 pinned golden-vector seed for regression output)
  gridtrust::Rng rng(0x853c49e6748fea9bULL);
  return rng();
}
