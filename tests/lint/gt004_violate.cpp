// gt-lint-fixture: path=src/net/thready.cpp expect=GT004:7,GT004:8,GT004:9
// GT004: naked thread primitives outside common/thread_pool.
#include <future>
#include <thread>

void fan_out(void (*work)()) {
  std::thread worker(work);
  worker.detach();
  auto task = std::async(std::launch::async, work);
  task.get();
}
