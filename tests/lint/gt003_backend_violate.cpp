// gt-lint-fixture: path=src/trust/noisy_policy.cpp expect=GT003:13,GT003:18
// GT003: a reputation backend smuggling a raw std engine.  Backends must be
// deterministic — the conformance suite replays identical evidence streams
// and expects identical evaluations, and the registry contract says equal
// params give equivalent policies.  Any randomness belongs to the caller,
// seeded through common/rng.
#include <random>

#include "common/rng.hpp"
#include "trust/reputation_policy.hpp"

double jittered_estimate(double base) {
  static std::minstd_rand gen(2002);
  std::uniform_real_distribution<double> jitter(-0.1, 0.1);
  return base + jitter(gen);
}

double hexed() { return gridtrust::Rng(0x8d2f4a6c1b3e5d7fULL).uniform(); }
