// gt-lint-fixture: path=src/sched/gt007_suppressed.cpp expect=none
// Same violation shape as gt007_violate.cpp, silenced with a reasoned
// inline allow on the mutex declaration.
#include <map>
#include <mutex>
#include <string>

namespace gridtrust {

class LegacyCache {
 public:
  int lookup(const std::string& key);

 private:
  // gt-lint: allow(GT007 annotation lands with the sync.hpp migration)
  std::mutex mutex_;
  std::map<std::string, int> entries_;
};

}  // namespace gridtrust
