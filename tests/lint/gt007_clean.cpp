// gt-lint-fixture: path=src/sched/gt007_clean.cpp expect=none
// Clean shapes: annotated guarded members, a mutex-only wrapper with no
// data to guard, a guard-free class of atomics, and an annotated
// gridtrust::Mutex member.
#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "common/annotations.hpp"
#include "common/sync.hpp"

namespace gridtrust {

class AnnotatedCache {
 public:
  int lookup(const std::string& key);

 private:
  std::mutex mutex_;
  std::map<std::string, int> entries_ GT_GUARDED_BY(mutex_);
  int hits_ GT_GUARDED_BY(mutex_) = 0;
};

class BareLock {
 public:
  void lock();
  void unlock();

 private:
  std::mutex mutex_;
};

struct Counters {
  std::atomic<int> hits{0};
  std::atomic<int> misses{0};
};

struct WrappedTable {
  Mutex mutex;
  std::map<std::string, double> rows GT_GUARDED_BY(mutex);
};

}  // namespace gridtrust
