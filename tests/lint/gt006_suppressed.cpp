// gt-lint-fixture: path=src/net/procy_suppressed.cpp expect=none
// GT006 suppressed: a crash handler that must re-raise the fatal signal
// after logging (the one legitimate raw-signal idiom outside subprocess).
#include <csignal>

extern "C" void crash_handler(int sig) {
  signal(sig, SIG_DFL);
  // gt-lint: allow(GT006 crash handler re-raises the fatal signal)
  raise(sig);
}
