// gt-lint-fixture: path=src/grid/messy.hpp expect=GT005:1,GT005:4,GT005:5,GT005:6,GT005:7,GT005:8
// GT005: include hygiene — missing #pragma once (reported at line 1),
// relative/../ includes, bare quoted includes, libstdc++ internals,
#include "../common/rng.hpp"
#include "rng.hpp"
#include <bits/stdc++.h>
#include <time.h>
#include <common/rng.hpp>

inline int messy() { return 0; }
