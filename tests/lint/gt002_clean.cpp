// gt-lint-fixture: path=src/obs/leaky_clean.cpp expect=none
// GT002 clean: ordered iteration at the export boundary; the unordered
// container is used for membership only, never iterated.
#include <map>
#include <string>
#include <unordered_set>

std::string to_json(const std::map<std::string, double>& metrics,
                    const std::unordered_set<std::string>& hidden) {
  std::string out = "{";
  for (const auto& [name, value] : metrics) {
    if (hidden.count(name) != 0) continue;
    out += "\"" + name + "\":" + std::to_string(value) + ",";
  }
  out += "}";
  return out;
}
