// gt-lint-fixture: path=src/des/clocky.cpp expect=GT001:8,GT001:9,GT001:10,GT001:11
// GT001: nondeterminism sources inside a simulation module.  Never
// compiled — linted by gt_lint.py --self-test.
#include <chrono>
#include <cstdlib>

double wall_time_leaks() {
  const int noise = std::rand();
  const auto wall = std::chrono::system_clock::now();
  const auto mono = std::chrono::steady_clock::now();
  const long stamp = time(nullptr);
  return static_cast<double>(noise + stamp) +
         std::chrono::duration<double>(mono - wall.time_since_epoch() + mono.time_since_epoch()).count();
}
