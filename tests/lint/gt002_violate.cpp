// gt-lint-fixture: path=src/obs/leaky.cpp expect=GT002:9,GT002:12
// GT002: hash-order iteration feeding exported bytes.
#include <string>
#include <unordered_map>

std::string to_json(const std::unordered_map<std::string, double>& metrics) {
  std::unordered_map<std::string, double> extra = metrics;
  std::string out = "{";
  for (const auto& [name, value] : extra) {
    out += "\"" + name + "\":" + std::to_string(value) + ",";
  }
  for (auto it = extra.begin(); it != extra.end(); ++it) {
    out += it->first;
  }
  out += "}";
  return out;
}
