// gt-lint-fixture: path=src/net/procy.cpp expect=GT006:10,GT006:12,GT006:13,GT006:15
// GT006: naked process primitives outside common/subprocess.
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>

int shell_out(char** argv) {
  int status = 0;
  const pid_t child = fork();
  if (child == 0) {
    execvp(argv[0], argv);
    raise(SIGKILL);
  }
  if (waitpid(child, &status, 0) < 0) return -1;
  return status;
}
