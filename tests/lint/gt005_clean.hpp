// gt-lint-fixture: path=src/grid/tidy.hpp expect=none
// GT005 clean: pragma once, repo-rooted quoted includes, standard headers.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "grid/domain.hpp"

inline int tidy() { return 0; }
