// gt-lint-fixture: path=src/obs/leaky_suppressed.cpp expect=none
// GT002 suppressed: iteration order provably cannot reach the output
// (values are summed, and addition order is fixed by key sort below).
#include <string>
#include <unordered_map>

std::string to_json(const std::unordered_map<std::string, long>& counts) {
  long total = 0;
  // gt-lint: allow(GT002 integer sum is order-independent)
  for (const auto& [name, value] : counts) {
    total += value;
  }
  return "{\"total\":" + std::to_string(total) + "}";
}
