// gt-lint-fixture: path=src/des/clocky_suppressed.cpp expect=none
// GT001 suppressed: both allow forms (same-line and standalone-above).
#include <chrono>

double measured_overhead() {
  // gt-lint: allow(GT001 profiling hook, never feeds simulation state)
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();  // gt-lint: allow(GT001 profiling hook)
  return std::chrono::duration<double>(t1 - t0).count();
}
