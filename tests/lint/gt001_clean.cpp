// gt-lint-fixture: path=src/des/clocky_clean.cpp expect=none
// GT001 clean: simulation code reads time from the DES kernel and
// randomness from an explicitly seeded Rng.
#include "common/rng.hpp"
#include "des/simulator.hpp"

double pure_simulation(gridtrust::des::Simulator& sim, gridtrust::Rng& rng) {
  const double now = sim.now();
  return now + rng.uniform();
}
