// gt-lint-fixture: path=src/grid/legacy.hpp expect=none
// GT005 suppressed: a vendored header kept byte-identical to upstream.
#pragma once

// gt-lint: allow(GT005 vendored upstream header, kept byte-identical)
#include <time.h>

inline int legacy() { return 0; }
