#pragma once
inline int base_util() { return 1; }
