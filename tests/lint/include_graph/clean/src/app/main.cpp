#include "base/util.hpp"
int main() { return base_util(); }
