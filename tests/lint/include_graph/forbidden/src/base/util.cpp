#include "app/logic.hpp"
int base_util() { return app_logic(); }
