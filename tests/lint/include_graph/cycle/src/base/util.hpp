#pragma once
#include "app/logic.hpp"
inline int base_util() { return app_logic(); }
