#pragma once
inline int app_logic() { return 2; }
