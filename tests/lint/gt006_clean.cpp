// gt-lint-fixture: path=src/net/procy_clean.cpp expect=none
// GT006 clean: process supervision rides common/subprocess — ChildProcess
// owns fork + reaping, send_signal/self_signal own kill.
#include "common/subprocess.hpp"

int run_worker() {
  gridtrust::ChildProcess child = gridtrust::ChildProcess::spawn(
      [](const gridtrust::FrameWriter&) { return 0; });
  child.send_signal(15);  // method call, not the raw primitive
  return child.wait_exit().code;
}
