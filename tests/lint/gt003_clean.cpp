// gt-lint-fixture: path=src/sim/seedy_clean.cpp expect=none
// GT003 clean: seeds arrive as explicit arguments and sub-streams are
// derived through the sanctioned helpers.
#include <vector>

#include "common/rng.hpp"

double replicate(std::uint64_t seed, const std::vector<std::size_t>& batch) {
  gridtrust::Rng parent(seed);
  gridtrust::Rng child = parent.stream(7);
  gridtrust::Rng batch_rng(gridtrust::derive_seed(seed, batch));
  return child.uniform() + batch_rng.uniform();
}
