// gt-lint-fixture: path=src/sched/gt007_violate.cpp expect=GT007:15,GT007:21
// A mutex member next to unannotated data: the lock/data association is
// invisible to the Clang thread-safety analysis, so GT007 flags the mutex.
#include <map>
#include <mutex>
#include <string>

namespace gridtrust {

class UnannotatedCache {
 public:
  int lookup(const std::string& key);

 private:
  std::mutex mutex_;
  std::map<std::string, int> entries_;
  int hits_ = 0;
};

struct SharedTable {
  mutable std::shared_mutex mutex;
  std::map<std::string, double> rows;
};

}  // namespace gridtrust
