// gt-lint-fixture: path=src/net/thready_suppressed.cpp expect=none
// GT004 suppressed: a signal-handling watchdog that must outlive the pool.
#include <thread>

void watchdog(void (*poll)()) {
  // gt-lint: allow(GT004 signal watchdog cannot run on pool workers)
  std::thread t(poll);
  t.join();
}
