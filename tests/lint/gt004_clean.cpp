// gt-lint-fixture: path=src/net/thready_clean.cpp expect=none
// GT004 clean: concurrency rides the shared pool.
#include <cstddef>

#include "common/thread_pool.hpp"

void fan_out(std::size_t n) {
  gridtrust::ThreadPool::shared().parallel_for(n, [](std::size_t) {});
}
