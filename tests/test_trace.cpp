// Tests for workload traces (save/replay) and meta-request formation.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "sched/executor.hpp"
#include "sched/problem.hpp"
#include "sim/trm_simulation.hpp"
#include "workload/heterogeneity.hpp"
#include "workload/request_gen.hpp"
#include "workload/trace.hpp"

namespace gridtrust::workload {
namespace {

struct Instance {
  std::vector<grid::Request> requests;
  sched::CostMatrix eec{1, 1};
};

Instance make_instance(std::uint64_t seed, std::size_t tasks = 20) {
  Rng rng(seed);
  const grid::GridSystem grid =
      grid::make_random_grid(grid::RandomGridParams{}, rng);
  RequestGenParams params;
  params.arrival_rate = 1.0;
  Instance out;
  out.requests = generate_requests(grid, tasks, params, rng);
  out.eec = generate_eec(tasks, grid.machines().size(), inconsistent_lolo(),
                         rng);
  return out;
}

TEST(Trace, RoundTripPreservesRequestsExactly) {
  const Instance original = make_instance(1);
  const Trace restored =
      trace_from_string(trace_to_string(original.requests, original.eec));
  ASSERT_EQ(restored.requests.size(), original.requests.size());
  for (std::size_t i = 0; i < original.requests.size(); ++i) {
    const grid::Request& a = original.requests[i];
    const grid::Request& b = restored.requests[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.client, b.client);
    EXPECT_EQ(a.client_domain, b.client_domain);
    EXPECT_EQ(a.activities, b.activities);
    EXPECT_EQ(a.client_rtl, b.client_rtl);
    EXPECT_EQ(a.resource_rtl, b.resource_rtl);
    EXPECT_EQ(a.arrival_time, b.arrival_time);  // bit-exact (precision 17)
  }
}

TEST(Trace, RoundTripPreservesEecExactly) {
  const Instance original = make_instance(2);
  const Trace restored =
      trace_from_string(trace_to_string(original.requests, original.eec));
  ASSERT_EQ(restored.eec.rows(), original.eec.rows());
  ASSERT_EQ(restored.eec.cols(), original.eec.cols());
  for (std::size_t r = 0; r < original.eec.rows(); ++r) {
    for (std::size_t m = 0; m < original.eec.cols(); ++m) {
      EXPECT_EQ(restored.eec.get(r, m), original.eec.get(r, m));
    }
  }
}

TEST(Trace, ReplayedInstanceSchedulesIdentically) {
  const Instance original = make_instance(3);
  const Trace restored =
      trace_from_string(trace_to_string(original.requests, original.eec));

  const auto schedule_of = [](const std::vector<grid::Request>& requests,
                              const sched::CostMatrix& eec) {
    sched::TrustCostMatrix tc(requests.size(), eec.cols(), 2);
    std::vector<double> arrivals;
    for (const auto& r : requests) arrivals.push_back(r.arrival_time);
    const sched::SchedulingProblem problem(
        eec, tc, sched::trust_aware_policy(), sched::SecurityCostModel{},
        arrivals);
    auto mct = sched::make_mct();
    return sched::run_immediate(problem, *mct);
  };
  const sched::Schedule a = schedule_of(original.requests, original.eec);
  const sched::Schedule b = schedule_of(restored.requests, restored.eec);
  EXPECT_EQ(a.machine_of, b.machine_of);
  EXPECT_EQ(a.makespan(), b.makespan());
}

TEST(Trace, RejectsCorruptInput) {
  EXPECT_THROW(trace_from_string(""), PreconditionError);
  EXPECT_THROW(trace_from_string("nope\n"), PreconditionError);
  EXPECT_THROW(trace_from_string("gridtrust-trace v1\ncounts 0 5\n"),
               PreconditionError);
  EXPECT_THROW(
      trace_from_string("gridtrust-trace v1\ncounts 1 2\n"
                        "req 0 0 0 C D 0.0 1\n"
                        "eec 0 5.0\n"),  // row too short
      PreconditionError);
  EXPECT_THROW(
      trace_from_string("gridtrust-trace v1\ncounts 1 1\n"
                        "req 0 0 0 Z D 0.0 1\n"
                        "eec 0 5.0\n"),  // bad trust level
      PreconditionError);
}

TEST(Trace, SaveValidatesShape) {
  const Instance original = make_instance(4, 5);
  sched::CostMatrix wrong(3, 2, 1.0);
  std::ostringstream os;
  EXPECT_THROW(save_trace(original.requests, wrong, os), PreconditionError);
  EXPECT_THROW(save_trace({}, wrong, os), PreconditionError);
}

// ------------------------------------------------------- meta-requests

grid::Request at(double arrival, grid::RequestId id = 0) {
  grid::Request r;
  r.id = id;
  r.activities = {0};
  r.arrival_time = arrival;
  return r;
}

TEST(MetaRequests, GroupsByFormationTick) {
  const std::vector<grid::Request> requests = {
      at(0.5, 0), at(9.9, 1), at(10.0, 2), at(10.1, 3), at(25.0, 4)};
  const auto batches = form_meta_requests(requests, 10.0);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].formed_at, 10.0);
  EXPECT_EQ(batches[0].size(), 3u);  // 0.5, 9.9, 10.0 (on-tick joins)
  EXPECT_EQ(batches[1].formed_at, 20.0);
  EXPECT_EQ(batches[1].size(), 1u);
  EXPECT_EQ(batches[2].formed_at, 30.0);
  EXPECT_EQ(batches[2].size(), 1u);
}

TEST(MetaRequests, EmptyIntervalsProduceNoBatches) {
  const auto batches =
      form_meta_requests({at(1.0), at(100.0)}, 10.0);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].batch_index, 0u);
  EXPECT_EQ(batches[1].batch_index, 9u);
  EXPECT_EQ(batches[1].formed_at, 100.0);
}

TEST(MetaRequests, ArrivalAtZeroJoinsFirstBatch) {
  const auto batches = form_meta_requests({at(0.0)}, 5.0);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].formed_at, 5.0);
  EXPECT_FALSE(batches[0].empty());
}

TEST(MetaRequests, MatchesBatchSimulatorBatchCount) {
  // The analytic grouping must agree with the event-driven RMS.
  const Instance inst = make_instance(7, 40);
  const double interval = 15.0;
  const auto batches = form_meta_requests(inst.requests, interval);

  sched::TrustCostMatrix tc(inst.requests.size(), inst.eec.cols(), 0);
  std::vector<double> arrivals;
  for (const auto& r : inst.requests) arrivals.push_back(r.arrival_time);
  const sched::SchedulingProblem problem(
      inst.eec, tc, sched::trust_aware_policy(), sched::SecurityCostModel{},
      arrivals);
  sim::TrmsConfig cfg;
  cfg.mode = sim::SchedulingMode::kBatch;
  cfg.heuristic = "min-min";
  cfg.batch_interval = interval;
  const sim::SimulationResult result = sim::run_trms(problem, cfg);
  EXPECT_EQ(result.batches, batches.size());
  std::size_t total = 0;
  for (const auto& b : batches) total += b.size();
  EXPECT_EQ(total, inst.requests.size());
}

TEST(MetaRequests, Validation) {
  EXPECT_THROW(form_meta_requests({at(1.0)}, 0.0), PreconditionError);
  EXPECT_THROW(form_meta_requests({at(5.0, 0), at(1.0, 1)}, 10.0),
               PreconditionError);  // unsorted arrivals
}

}  // namespace
}  // namespace gridtrust::workload
