// Tests for workload generation: heterogeneous EEC matrices and the §5.3
// request generator.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "sched/executor.hpp"
#include "workload/heterogeneity.hpp"
#include "workload/request_gen.hpp"

namespace gridtrust::workload {
namespace {

// ---------------------------------------------------------------- EEC gen

TEST(Heterogeneity, PresetLabels) {
  EXPECT_EQ(to_string(consistent_lolo()), "consistent LoLo");
  EXPECT_EQ(to_string(inconsistent_lolo()), "inconsistent LoLo");
  HeterogeneityParams hihi;
  hihi.task = Heterogeneity::kHigh;
  hihi.machine = Heterogeneity::kHigh;
  hihi.consistency = Consistency::kSemiConsistent;
  EXPECT_EQ(to_string(hihi), "semi-consistent HiHi");
}

TEST(Heterogeneity, ValuesWithinAnalyticBounds) {
  Rng rng(1);
  const sched::CostMatrix eec = generate_eec(100, 8, inconsistent_lolo(), rng);
  for (std::size_t r = 0; r < eec.rows(); ++r) {
    for (std::size_t m = 0; m < eec.cols(); ++m) {
      EXPECT_GE(eec.get(r, m), 1.0);
      EXPECT_LT(eec.get(r, m), 100.0 * 10.0);
    }
  }
}

TEST(Heterogeneity, ConsistentRowsAreSorted) {
  Rng rng(2);
  const sched::CostMatrix eec = generate_eec(50, 6, consistent_lolo(), rng);
  for (std::size_t r = 0; r < eec.rows(); ++r) {
    for (std::size_t m = 1; m < eec.cols(); ++m) {
      EXPECT_LE(eec.get(r, m - 1), eec.get(r, m));
    }
  }
  EXPECT_NEAR(consistency_index(eec), 1.0, 1e-12);
}

TEST(Heterogeneity, InconsistentMatrixHasLowConsistencyIndex) {
  Rng rng(3);
  const sched::CostMatrix eec = generate_eec(60, 8, inconsistent_lolo(), rng);
  EXPECT_LT(consistency_index(eec), 0.2);
}

TEST(Heterogeneity, SemiConsistentSortsEvenColumns) {
  Rng rng(4);
  HeterogeneityParams params = inconsistent_lolo();
  params.consistency = Consistency::kSemiConsistent;
  const sched::CostMatrix eec = generate_eec(40, 7, params, rng);
  for (std::size_t r = 0; r < eec.rows(); ++r) {
    for (std::size_t m = 2; m < eec.cols(); m += 2) {
      EXPECT_LE(eec.get(r, m - 2), eec.get(r, m));
    }
  }
}

TEST(Heterogeneity, HighTaskHeterogeneityRaisesTaskCv) {
  Rng rng(5);
  HeterogeneityParams lo = inconsistent_lolo();
  HeterogeneityParams hi = lo;
  hi.task = Heterogeneity::kHigh;
  const auto m_lo = measure_heterogeneity(generate_eec(200, 8, lo, rng));
  const auto m_hi = measure_heterogeneity(generate_eec(200, 8, hi, rng));
  EXPECT_GT(m_hi.task_cv, m_lo.task_cv);
}

TEST(Heterogeneity, HighMachineHeterogeneityRaisesMachineCv) {
  Rng rng(6);
  HeterogeneityParams lo = inconsistent_lolo();
  HeterogeneityParams hi = lo;
  hi.machine = Heterogeneity::kHigh;
  const auto m_lo = measure_heterogeneity(generate_eec(200, 8, lo, rng));
  const auto m_hi = measure_heterogeneity(generate_eec(200, 8, hi, rng));
  EXPECT_GT(m_hi.machine_cv, m_lo.machine_cv);
}

TEST(Heterogeneity, Validation) {
  Rng rng(7);
  EXPECT_THROW(generate_eec(0, 5, inconsistent_lolo(), rng),
               PreconditionError);
  HeterogeneityParams bad = inconsistent_lolo();
  bad.low_task_range = 1.0;
  EXPECT_THROW(generate_eec(5, 5, bad, rng), PreconditionError);
}

TEST(Heterogeneity, DeterministicForSeed) {
  Rng a(8);
  Rng b(8);
  const auto m1 = generate_eec(20, 5, inconsistent_lolo(), a);
  const auto m2 = generate_eec(20, 5, inconsistent_lolo(), b);
  EXPECT_EQ(m1.data(), m2.data());
}

// ---------------------------------------------------------------- requests

grid::GridSystem test_grid(std::uint64_t seed = 1) {
  Rng rng(seed);
  return grid::make_random_grid(grid::RandomGridParams{}, rng);
}

TEST(RequestGen, RespectsPaperRanges) {
  const grid::GridSystem grid = test_grid();
  Rng rng(10);
  RequestGenParams params;  // ToAs U[1,4], RTL U[1,6]
  const auto requests = generate_requests(grid, 500, params, rng);
  ASSERT_EQ(requests.size(), 500u);
  std::set<std::size_t> toa_counts;
  std::set<int> rtls;
  for (const grid::Request& r : requests) {
    EXPECT_LT(r.client_domain, grid.client_domains().size());
    EXPECT_GE(r.activities.size(), 1u);
    EXPECT_LE(r.activities.size(), 4u);
    toa_counts.insert(r.activities.size());
    rtls.insert(trust::to_numeric(r.client_rtl));
    rtls.insert(trust::to_numeric(r.resource_rtl));
    // Activities are distinct and sorted.
    for (std::size_t i = 1; i < r.activities.size(); ++i) {
      EXPECT_LT(r.activities[i - 1], r.activities[i]);
    }
    EXPECT_EQ(r.arrival_time, 0.0);  // arrival_rate defaults to 0
  }
  EXPECT_EQ(toa_counts.size(), 4u);  // all counts 1..4 appear
  EXPECT_EQ(rtls.size(), 6u);        // all levels A..F appear
}

TEST(RequestGen, RequestsComeFromRealClients) {
  const grid::GridSystem grid = test_grid();  // 3 clients per CD by default
  ASSERT_FALSE(grid.clients().empty());
  Rng rng(30);
  const auto requests = generate_requests(grid, 200, {}, rng);
  std::set<grid::ClientId> seen;
  for (const grid::Request& r : requests) {
    ASSERT_LT(r.client, grid.clients().size());
    // c(r)'s domain and the request's domain must agree.
    EXPECT_EQ(grid.client(r.client).client_domain, r.client_domain);
    seen.insert(r.client);
  }
  EXPECT_GT(seen.size(), 1u);  // multiple distinct clients submit
}

TEST(RequestGen, RequestIdsAreDense) {
  const grid::GridSystem grid = test_grid();
  Rng rng(11);
  const auto requests = generate_requests(grid, 20, {}, rng);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, i);
  }
}

TEST(RequestGen, PoissonArrivalsAreMonotoneWithCorrectMean) {
  const grid::GridSystem grid = test_grid();
  Rng rng(12);
  RequestGenParams params;
  params.arrival_rate = 2.0;
  const auto requests = generate_requests(grid, 20000, params, rng);
  double last = 0.0;
  for (const grid::Request& r : requests) {
    EXPECT_GE(r.arrival_time, last);
    last = r.arrival_time;
  }
  // Mean inter-arrival ~ 1/2.
  EXPECT_NEAR(last / 20000.0, 0.5, 0.02);
}

TEST(RequestGen, Validation) {
  const grid::GridSystem grid = test_grid();
  Rng rng(13);
  EXPECT_THROW(generate_requests(grid, 0, {}, rng), PreconditionError);
  RequestGenParams bad;
  bad.min_activities = 0;
  EXPECT_THROW(generate_requests(grid, 1, bad, rng), PreconditionError);
  bad = RequestGenParams{};
  bad.max_activities = 99;
  EXPECT_THROW(generate_requests(grid, 1, bad, rng), PreconditionError);
  bad = RequestGenParams{};
  bad.min_rtl = 0;
  EXPECT_THROW(generate_requests(grid, 1, bad, rng), PreconditionError);
}

TEST(RequestGen, RtlRangeIsConfigurable) {
  const grid::GridSystem grid = test_grid();
  Rng rng(14);
  RequestGenParams params;
  params.min_rtl = 2;
  params.max_rtl = 3;
  const auto requests = generate_requests(grid, 200, params, rng);
  for (const grid::Request& r : requests) {
    EXPECT_GE(trust::to_numeric(r.client_rtl), 2);
    EXPECT_LE(trust::to_numeric(r.client_rtl), 3);
  }
}

// ---------------------------------------------------------------- deadlines

TEST(Deadlines, DrawnAfterArrivalWithSlackTimesBestEec) {
  const grid::GridSystem grid = test_grid();
  Rng rng(20);
  RequestGenParams params;
  params.arrival_rate = 1.0;
  const auto requests = generate_requests(grid, 50, params, rng);
  const auto eec =
      generate_eec(50, grid.machines().size(), inconsistent_lolo(), rng);
  const auto deadlines = draw_deadlines(requests, eec, 2.0, 6.0, rng);
  ASSERT_EQ(deadlines.size(), 50u);
  for (std::size_t r = 0; r < 50; ++r) {
    double best = eec.get(r, 0);
    for (std::size_t m = 1; m < eec.cols(); ++m) {
      best = std::min(best, eec.get(r, m));
    }
    EXPECT_GE(deadlines[r], requests[r].arrival_time + 2.0 * best - 1e-9);
    EXPECT_LE(deadlines[r], requests[r].arrival_time + 6.0 * best + 1e-9);
  }
}

TEST(Deadlines, MissFractionCountsLateCompletions) {
  sched::CostMatrix eec(3, 1, 10.0);
  sched::TrustCostMatrix tc(3, 1, 0);
  const sched::SchedulingProblem p(eec, tc, sched::trust_aware_policy(),
                                   sched::SecurityCostModel{});
  sched::Schedule s = sched::Schedule::for_problem(p);
  sched::commit_assignment(p, 0, 0, 0.0, s);  // completes 10
  sched::commit_assignment(p, 1, 0, 0.0, s);  // completes 20
  sched::commit_assignment(p, 2, 0, 0.0, s);  // completes 30
  EXPECT_NEAR(deadline_miss_fraction(s, {15.0, 15.0, 35.0}), 1.0 / 3.0,
              1e-12);
  EXPECT_NEAR(deadline_miss_fraction(s, {10.0, 20.0, 30.0}), 0.0, 1e-12);
}

TEST(Deadlines, Validation) {
  const grid::GridSystem grid = test_grid();
  Rng rng(21);
  const auto requests = generate_requests(grid, 5, {}, rng);
  const auto eec =
      generate_eec(5, grid.machines().size(), inconsistent_lolo(), rng);
  EXPECT_THROW(draw_deadlines(requests, eec, 0.5, 2.0, rng),
               PreconditionError);  // slack < 1
  EXPECT_THROW(draw_deadlines(requests, eec, 4.0, 2.0, rng),
               PreconditionError);  // inverted range
  sched::CostMatrix wrong(3, 2, 1.0);
  EXPECT_THROW(draw_deadlines(requests, wrong, 2.0, 4.0, rng),
               PreconditionError);
  sched::TrustCostMatrix tc(5, eec.cols(), 0);
  const sched::SchedulingProblem p(eec, tc, sched::trust_aware_policy(),
                                   sched::SecurityCostModel{});
  const sched::Schedule incomplete = sched::Schedule::for_problem(p);
  EXPECT_THROW(deadline_miss_fraction(incomplete, std::vector<double>(5, 1.0)),
               PreconditionError);
}

// ---------------------------------------------------------------- table

TEST(RandomTrustTable, PairLevelSharesAcrossActivities) {
  const grid::GridSystem grid = test_grid(3);
  Rng rng(15);
  const trust::TrustLevelTable table =
      random_trust_table(grid, rng, TableCorrelation::kPairLevel);
  for (std::size_t cd = 0; cd < table.client_domains(); ++cd) {
    for (std::size_t rd = 0; rd < table.resource_domains(); ++rd) {
      const trust::TrustLevel base = table.get(cd, rd, 0);
      for (std::size_t act = 1; act < table.activities(); ++act) {
        EXPECT_EQ(table.get(cd, rd, act), base);
      }
    }
  }
}

TEST(RandomTrustTable, PairLevelCoversOfferedRange) {
  std::set<int> seen;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const grid::GridSystem grid = test_grid(seed);
    Rng rng(seed + 1000);
    const trust::TrustLevelTable table =
        random_trust_table(grid, rng, TableCorrelation::kPairLevel);
    seen.insert(trust::to_numeric(table.get(0, 0, 0)));
  }
  EXPECT_EQ(seen, (std::set<int>{1, 2, 3, 4, 5}));
}

TEST(RandomTrustTable, IndependentModeVariesAcrossActivities) {
  const grid::GridSystem grid = test_grid(3);
  Rng rng(16);
  const trust::TrustLevelTable table = random_trust_table(
      grid, rng, TableCorrelation::kIndependentPerActivity);
  // With 8 activities per pair, all-equal entries are vanishingly unlikely.
  bool varies = false;
  for (std::size_t act = 1; act < table.activities() && !varies; ++act) {
    varies = table.get(0, 0, act) != table.get(0, 0, 0);
  }
  EXPECT_TRUE(varies);
}

}  // namespace
}  // namespace gridtrust::workload
