// Lab sweep engine: grid expansion, seed derivation, parallel determinism,
// fault containment and retry, checkpoint/resume, the result cache,
// manifest round-trips, and baseline comparison gates.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/fs.hpp"
#include "lab/cache.hpp"
#include "lab/catalog.hpp"
#include "lab/engine.hpp"
#include "lab/journal.hpp"
#include "lab/manifest.hpp"
#include "lab/spec.hpp"
#include "obs/json_in.hpp"
#include "obs/metrics.hpp"

namespace gridtrust::lab {
namespace {

/// A tiny synthetic sweep (no simulator) whose results are a pure function
/// of (cell, rep_seed) — fast enough to run hundreds of times in tests.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.name = "tiny";
  spec.title = "synthetic test sweep";
  spec.axes = {{"alpha", {1, 2, 3}}, {"mode", {"fast", "slow"}}};
  spec.replications = 4;
  spec.seed = 99;
  spec.run = [](const Cell& cell, std::uint64_t rep_seed) {
    obs::RunReport report;
    report.set("value", cell.number("alpha") * 10.0 +
                            static_cast<double>(rep_seed % 1000) / 1000.0);
    report.set("mode_len", static_cast<double>(cell.text("mode").size()));
    return report;
  };
  spec.finalize = [](const Cell& cell, AggregateSet& aggregate) {
    aggregate.set_derived("alpha_echo", cell.number("alpha"));
  };
  return spec;
}

std::string temp_dir(const std::string& leaf) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("gridtrust_lab_" + leaf);
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(SweepSpecTest, ExpandsCellsRowMajorWithLastAxisFastest) {
  const std::vector<Cell> cells = tiny_spec().cells();
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].label(), "alpha=1 mode=fast");
  EXPECT_EQ(cells[1].label(), "alpha=1 mode=slow");
  EXPECT_EQ(cells[2].label(), "alpha=2 mode=fast");
  EXPECT_EQ(cells[5].label(), "alpha=3 mode=slow");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
}

TEST(SweepSpecTest, ContentHashTracksEveryDeclaredField) {
  const SweepSpec base = tiny_spec();
  SweepSpec edited = base;
  EXPECT_EQ(base.content_hash(), edited.content_hash());
  edited.version = "2";
  EXPECT_NE(base.content_hash(), edited.content_hash());
  edited = base;
  edited.seed = 100;
  EXPECT_NE(base.content_hash(), edited.content_hash());
  edited = base;
  edited.axes[0].values.push_back(4);
  EXPECT_NE(base.content_hash(), edited.content_hash());
  edited = base;
  edited.replications = 5;
  EXPECT_NE(base.content_hash(), edited.content_hash());
  // Presentation fields do not participate.
  edited = base;
  edited.title = "different title";
  edited.display_metrics = {"value"};
  EXPECT_EQ(base.content_hash(), edited.content_hash());
}

TEST(SweepSpecTest, RepSeedsAreDistinctAcrossCellsAndReps) {
  const std::vector<Cell> cells = tiny_spec().cells();
  std::set<std::uint64_t> seeds;
  for (const Cell& cell : cells) {
    const std::uint64_t hash = cell_param_hash(cell);
    for (std::size_t rep = 0; rep < 64; ++rep) {
      seeds.insert(derive_rep_seed(99, hash, rep));
    }
  }
  EXPECT_EQ(seeds.size(), cells.size() * 64);
  // Pure function: recomputing gives the same stream.
  EXPECT_EQ(derive_rep_seed(99, cell_param_hash(cells[0]), 3),
            derive_rep_seed(99, cell_param_hash(cells[0]), 3));
}

TEST(EngineTest, ParallelRunsAreBitIdenticalToSerial) {
  const SweepSpec spec = tiny_spec();
  EngineOptions serial;
  serial.jobs = 1;
  EngineOptions parallel;
  parallel.jobs = 4;
  const std::string a = to_json(run_sweep(spec, serial).manifest);
  const std::string b = to_json(run_sweep(spec, parallel).manifest);
  EXPECT_EQ(a, b);
  EngineOptions shared;
  shared.jobs = 0;  // process-wide pool
  EXPECT_EQ(a, to_json(run_sweep(spec, shared).manifest));
}

TEST(EngineTest, AggregatesMeanAndDerivedMetricsPerCell) {
  const SweepRun run = run_sweep(tiny_spec());
  ASSERT_EQ(run.manifest.cells.size(), 6u);
  EXPECT_EQ(run.units_run, 6u * 4u);
  for (const ManifestCell& cell : run.manifest.cells) {
    ASSERT_EQ(cell.metrics.size(), 3u);
    EXPECT_EQ(cell.metrics[0].first, "value");
    EXPECT_EQ(cell.metrics[0].second.n, 4u);
    EXPECT_EQ(cell.metrics[2].first, "alpha_echo");
    EXPECT_EQ(cell.metrics[2].second.n, 0u);  // derived
    // alpha_echo equals the cell's alpha parameter.
    EXPECT_EQ(cell.metrics[2].second.mean, cell.params[0].second.number());
  }
}

TEST(EngineTest, SeedAndReplicationOverridesChangeTheSpecHash) {
  const SweepSpec spec = tiny_spec();
  EngineOptions options;
  const Manifest base = run_sweep(spec, options).manifest;
  options.seed = 7;
  options.replications = 2;
  const Manifest overridden = run_sweep(spec, options).manifest;
  EXPECT_NE(base.spec_hash, overridden.spec_hash);
  EXPECT_EQ(overridden.seed, 7u);
  EXPECT_EQ(overridden.replications, 2u);
  EXPECT_EQ(overridden.cells[0].replications, 2u);
}

TEST(CacheTest, SecondRunHitsAndMatchesByteForByte) {
  const SweepSpec spec = tiny_spec();
  EngineOptions options;
  options.cache_dir = temp_dir("hit");
  const SweepRun first = run_sweep(spec, options);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.units_run, 24u);
  const SweepRun second = run_sweep(spec, options);
  EXPECT_EQ(second.cache_hits, 6u);
  EXPECT_EQ(second.units_run, 0u);
  EXPECT_EQ(to_json(first.manifest), to_json(second.manifest));
}

TEST(CacheTest, SpecEditsInvalidateTheCache) {
  SweepSpec spec = tiny_spec();
  EngineOptions options;
  options.cache_dir = temp_dir("invalidate");
  (void)run_sweep(spec, options);

  // A version bump misses every cell.
  spec.version = "2";
  EXPECT_EQ(run_sweep(spec, options).cache_hits, 0u);

  // A seed override misses too (the key folds the effective seed).
  spec = tiny_spec();
  EngineOptions reseeded = options;
  reseeded.seed = 1234;
  EXPECT_EQ(run_sweep(spec, reseeded).cache_hits, 0u);

  // Adding an axis value re-runs only the new cells.
  spec = tiny_spec();
  spec.axes[0].values.push_back(4);
  const SweepRun grown = run_sweep(spec, options);
  EXPECT_EQ(grown.cache_hits, 6u);
  EXPECT_EQ(grown.units_run, 2u * 4u);  // the two new alpha=4 cells
}

TEST(CacheTest, CorruptEntryIsAMiss) {
  const SweepSpec spec = tiny_spec();
  EngineOptions options;
  options.cache_dir = temp_dir("corrupt");
  (void)run_sweep(spec, options);
  for (const auto& entry :
       std::filesystem::directory_iterator(options.cache_dir)) {
    std::FILE* f = std::fopen(entry.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{not json", f);
    std::fclose(f);
  }
  const SweepRun rerun = run_sweep(spec, options);
  EXPECT_EQ(rerun.cache_hits, 0u);
  EXPECT_EQ(rerun.units_run, 24u);
}

TEST(ManifestTest, RoundTripsThroughJsonByteForByte) {
  const Manifest manifest = run_sweep(tiny_spec()).manifest;
  const std::string json = to_json(manifest);
  const Manifest parsed = parse_manifest(json);
  EXPECT_EQ(parsed.spec, "tiny");
  EXPECT_EQ(parsed.seed, 99u);
  EXPECT_EQ(parsed.cells.size(), 6u);
  EXPECT_EQ(parsed.cells[3].params[1].second.text(), "slow");
  EXPECT_EQ(to_json(parsed), json);  // byte-stable round trip
}

TEST(ManifestTest, ParseRejectsWrongSchemaAndGarbage) {
  EXPECT_THROW((void)parse_manifest("{\"schema\":\"other/v9\",\"cells\":[]}"),
               PreconditionError);
  EXPECT_THROW((void)parse_manifest("not json at all"), PreconditionError);
}

TEST(CompareTest, IdenticalManifestsPassAndPerturbedMeansFail) {
  const Manifest base = run_sweep(tiny_spec()).manifest;
  const CompareResult same = compare_manifests(base, base);
  EXPECT_TRUE(same.pass);
  EXPECT_GT(same.metrics_checked, 0u);

  Manifest drifted = base;
  drifted.cells[2].metrics[0].second.mean *= 1.5;  // way past 1 %
  const CompareResult fail = compare_manifests(drifted, base);
  EXPECT_FALSE(fail.pass);
  ASSERT_EQ(fail.violations.size(), 1u);
  EXPECT_NE(fail.violations[0].where.find("value"), std::string::npos);

  // A generous explicit tolerance turns the same drift into a pass.
  CompareOptions loose;
  loose.tolerance_pct = 60.0;
  EXPECT_TRUE(compare_manifests(drifted, base, loose).pass);
}

TEST(CompareTest, StructuralMismatchesAreViolations) {
  const Manifest base = run_sweep(tiny_spec()).manifest;

  Manifest wrong_spec = base;
  wrong_spec.spec = "other";
  EXPECT_FALSE(compare_manifests(wrong_spec, base).pass);

  Manifest missing_cell = base;
  missing_cell.cells.pop_back();
  EXPECT_FALSE(compare_manifests(missing_cell, base).pass);

  Manifest missing_metric = base;
  missing_metric.cells[0].metrics.erase(
      missing_metric.cells[0].metrics.begin());
  EXPECT_FALSE(compare_manifests(missing_metric, base).pass);

  // A rebuilt binary (different git_rev) that reproduces the numbers passes.
  Manifest rebuilt = base;
  rebuilt.git_rev = "deadbeef0123";
  EXPECT_TRUE(compare_manifests(rebuilt, base).pass);
}

TEST(CatalogTest, EverySpecIsRunnableAndResolvable) {
  for (const SweepSpec& spec : builtin_specs()) {
    EXPECT_NE(spec.run, nullptr) << spec.name;
    EXPECT_FALSE(spec.axes.empty()) << spec.name;
    EXPECT_FALSE(spec.paper_ref.empty()) << spec.name;
    EXPECT_EQ(find_spec(spec.name), &spec);
    EXPECT_EQ(resolve_run_names(spec.name),
              std::vector<std::string>{spec.name});
  }
  EXPECT_EQ(resolve_run_names("tables").size(), 6u);
  EXPECT_EQ(resolve_run_names("no_such_spec").size(), 0u);
}

TEST(CatalogTest, SmokeSpecMatchesItsCommittedBaselineShape) {
  const SweepSpec* smoke = find_spec("smoke");
  ASSERT_NE(smoke, nullptr);
  const SweepRun run = run_sweep(*smoke);
  EXPECT_EQ(run.manifest.cells.size(), 1u);
  // The paired metrics the baseline gates on.
  const ManifestCell& cell = run.manifest.cells.front();
  std::set<std::string> names;
  for (const auto& [name, metric] : cell.metrics) names.insert(name);
  EXPECT_TRUE(names.count("unaware.makespan"));
  EXPECT_TRUE(names.count("aware.makespan"));
  EXPECT_TRUE(names.count("improvement_pct"));
}

// ------------------------------------------------ fault containment / retry

/// Runner failing on a fixed (cell predicate, rep set).  Rep is recovered
/// by matching the derived seed, so the failure is a pure function of the
/// unit — bit-identical under any jobs value.
SweepSpec failing_spec(std::set<std::size_t> failing_reps,
                       double failing_alpha = 3.0) {
  SweepSpec spec = tiny_spec();
  spec.name = "tiny_failing";
  spec.run = [failing_reps, failing_alpha](const Cell& cell,
                                           std::uint64_t rep_seed) {
    for (const std::size_t rep : failing_reps) {
      if (cell.number("alpha") == failing_alpha &&
          rep_seed == derive_rep_seed(99, cell_param_hash(cell), rep)) {
        throw PreconditionError("synthetic failure in " + cell.label());
      }
    }
    obs::RunReport report;
    report.set("value", cell.number("alpha") * 10.0 +
                            static_cast<double>(rep_seed % 1000) / 1000.0);
    return report;
  };
  spec.finalize = nullptr;
  return spec;
}

TEST(ContainmentTest, DefaultStrictModeRethrowsTheRunnerError) {
  // The historical contract with the default zero failure budget.
  EXPECT_THROW((void)run_sweep(failing_spec({0})), PreconditionError);
}

TEST(ContainmentTest, BudgetedRunCompletesHealthyCellsAndRecordsFailures) {
  EngineOptions options;
  options.failure_budget_pct = 50.0;
  const SweepRun run = run_sweep(failing_spec({0}), options);

  EXPECT_EQ(run.manifest.outcome, RunOutcome::kPartial);
  EXPECT_EQ(run.units_failed, 2u);  // rep 0 of both alpha=3 cells
  EXPECT_EQ(run.cells_failed, 2u);
  ASSERT_EQ(run.manifest.cells.size(), 6u);
  for (const ManifestCell& cell : run.manifest.cells) {
    const bool failing = cell.params[0].second.number() == 3.0;
    if (!failing) {
      EXPECT_EQ(cell.status, CellStatus::kOk);
      EXPECT_TRUE(cell.failures.empty());
      ASSERT_FALSE(cell.metrics.empty());
      EXPECT_EQ(cell.metrics[0].second.n, 4u);
      continue;
    }
    EXPECT_EQ(cell.status, CellStatus::kFailed);
    ASSERT_EQ(cell.failures.size(), 1u);
    const UnitFailure& failure = cell.failures[0];
    EXPECT_EQ(failure.rep, 0u);
    EXPECT_EQ(failure.error_class, ErrorClass::kPrecondition);
    EXPECT_EQ(failure.attempts, 1u);
    EXPECT_NE(failure.message.find("synthetic failure"), std::string::npos);
    // The failure records the exact derived seed of the doomed unit.
    Cell grid_cell;
    grid_cell.params = cell.params;
    EXPECT_EQ(failure.seed, derive_rep_seed(99, cell_param_hash(grid_cell), 0));
    // Metrics aggregate the three surviving replications.
    ASSERT_FALSE(cell.metrics.empty());
    EXPECT_EQ(cell.metrics[0].second.n, 3u);
  }
}

TEST(ContainmentTest, FailedManifestsAreBitIdenticalAtAnyJobsValue) {
  EngineOptions serial;
  serial.failure_budget_pct = 50.0;
  serial.jobs = 1;
  EngineOptions parallel = serial;
  parallel.jobs = 4;
  EXPECT_EQ(to_json(run_sweep(failing_spec({0, 2}), serial).manifest),
            to_json(run_sweep(failing_spec({0, 2}), parallel).manifest));
}

TEST(ContainmentTest, ExceededBudgetRethrows) {
  EngineOptions options;
  options.failure_budget_pct = 5.0;  // 2/24 units ≈ 8.3% > 5%
  EXPECT_THROW((void)run_sweep(failing_spec({0}), options),
               PreconditionError);
}

TEST(ContainmentTest, FailedCellsAreNeverCached) {
  EngineOptions options;
  options.failure_budget_pct = 50.0;
  options.cache_dir = temp_dir("failed_cells");
  (void)run_sweep(failing_spec({0}), options);
  const SweepRun second = run_sweep(failing_spec({0}), options);
  EXPECT_EQ(second.cache_hits, 4u);      // only the healthy cells
  EXPECT_EQ(second.units_run, 2u * 4u);  // both failed cells re-run whole
  EXPECT_EQ(second.manifest.outcome, RunOutcome::kPartial);
}

TEST(RetryTest, ExhaustionRecordsAttemptsAndDowngradesToPartial) {
  EngineOptions options;
  options.failure_budget_pct = 50.0;
  options.retry.max_attempts = 3;
  options.retry.backoff_initial_ms = 0;  // deterministic class: no sleep
  const SweepRun run = run_sweep(failing_spec({1}), options);
  EXPECT_EQ(run.manifest.outcome, RunOutcome::kPartial);
  EXPECT_EQ(run.units_failed, 2u);
  // Each doomed unit consumed all three attempts → two retries apiece.
  EXPECT_EQ(run.units_retried, 4u);
  for (const ManifestCell& cell : run.manifest.cells) {
    for (const UnitFailure& failure : cell.failures) {
      EXPECT_EQ(failure.attempts, 3u);
    }
  }
}

TEST(RetryTest, TransientFailureSucceedsOnRetryWithTheSameSeed) {
  // Shared state is test-only: a "flaky" runner that fails its first two
  // calls for the alpha=1/rep=0 unit, then succeeds.
  auto flaky_remaining = std::make_shared<std::atomic<int>>(2);
  SweepSpec spec = tiny_spec();
  spec.finalize = nullptr;
  auto seen_seeds = std::make_shared<std::vector<std::uint64_t>>();
  spec.run = [flaky_remaining, seen_seeds](const Cell& cell,
                                           std::uint64_t rep_seed) {
    if (cell.number("alpha") == 1.0 && cell.text("mode") == "fast" &&
        rep_seed == derive_rep_seed(99, cell_param_hash(cell), 0)) {
      seen_seeds->push_back(rep_seed);
      if (flaky_remaining->fetch_sub(1) > 0) {
        throw std::runtime_error("transient glitch");
      }
    }
    obs::RunReport report;
    report.set("value", cell.number("alpha"));
    return report;
  };

  EngineOptions options;
  options.jobs = 1;
  options.retry.max_attempts = 3;
  options.retry.backoff_initial_ms = 1;
  const SweepRun run = run_sweep(spec, options);
  EXPECT_EQ(run.manifest.outcome, RunOutcome::kComplete);
  EXPECT_EQ(run.units_failed, 0u);
  EXPECT_EQ(run.units_retried, 2u);
  // Seed-preserving re-run: all three attempts saw the identical seed.
  ASSERT_EQ(seen_seeds->size(), 3u);
  EXPECT_EQ((*seen_seeds)[0], (*seen_seeds)[1]);
  EXPECT_EQ((*seen_seeds)[1], (*seen_seeds)[2]);
  for (const ManifestCell& cell : run.manifest.cells) {
    EXPECT_EQ(cell.status, CellStatus::kOk);
  }
}

TEST(DeadlineTest, OverrunningUnitsAreMarkedTimeoutInsteadOfHanging) {
  SweepSpec spec = tiny_spec();
  spec.finalize = nullptr;
  spec.axes = {{"alpha", {1}}, {"mode", {"fast"}}};
  spec.replications = 2;
  spec.run = [](const Cell& cell, std::uint64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    obs::RunReport report;
    report.set("value", cell.number("alpha"));
    return report;
  };
  EngineOptions options;
  options.failure_budget_pct = 100.0;
  options.unit_deadline_seconds = 0.001;
  const SweepRun run = run_sweep(spec, options);
  EXPECT_EQ(run.manifest.outcome, RunOutcome::kPartial);
  ASSERT_EQ(run.manifest.cells.size(), 1u);
  const ManifestCell& cell = run.manifest.cells[0];
  EXPECT_EQ(cell.status, CellStatus::kFailed);
  ASSERT_EQ(cell.failures.size(), 2u);
  for (const UnitFailure& failure : cell.failures) {
    EXPECT_EQ(failure.error_class, ErrorClass::kTimeout);
    EXPECT_NE(failure.message.find("deadline"), std::string::npos);
  }
  EXPECT_TRUE(cell.metrics.empty());  // overrun results are discarded
}

// ------------------------------------------------ journal / resume

TEST(JournalTest, RoundTripsAndToleratesTornTail) {
  const Manifest manifest = run_sweep(tiny_spec()).manifest;
  Journal journal;
  journal.spec = "tiny";
  journal.spec_hash = manifest.spec_hash;
  journal.seed = 99;
  journal.replications = 4;
  journal.cells = manifest.cells;

  const std::string jsonl = journal_to_jsonl(journal);
  const Journal parsed = parse_journal(jsonl);
  EXPECT_EQ(parsed.spec, "tiny");
  EXPECT_EQ(parsed.spec_hash, journal.spec_hash);
  EXPECT_EQ(parsed.seed, 99u);
  EXPECT_EQ(parsed.cells.size(), 6u);
  EXPECT_EQ(journal_to_jsonl(parsed), jsonl);

  // A torn final line (simulating a non-atomic writer dying mid-append)
  // drops only that cell.
  const std::string torn = jsonl.substr(0, jsonl.size() - 25);
  EXPECT_EQ(parse_journal(torn).cells.size(), 5u);

  // Corruption anywhere else is an error, as is a foreign header.
  EXPECT_THROW((void)parse_journal("{\"schema\":\"other\"}\n"),
               PreconditionError);
}

TEST(JournalTest, TornMidRecordLineDropsOnlyThatCell) {
  // An appended shard journal can tear in the *middle* (a record written
  // by a dying incarnation, followed by its replacement's records): only
  // the damaged cell may be lost.
  const Manifest manifest = run_sweep(tiny_spec()).manifest;
  Journal journal;
  journal.spec = "tiny";
  journal.spec_hash = manifest.spec_hash;
  journal.seed = 99;
  journal.replications = 4;
  journal.cells = manifest.cells;

  std::vector<std::string> lines;
  std::istringstream in(journal_to_jsonl(journal));
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 7u);  // header + 6 cells
  lines[2] = lines[2].substr(0, lines[2].size() / 2);  // tear cell 1
  std::string torn;
  for (const std::string& line : lines) torn += line + "\n";

  const Journal parsed = parse_journal(torn);
  ASSERT_EQ(parsed.cells.size(), 5u);
  EXPECT_EQ(parsed.cells[0].index, 0u);
  EXPECT_EQ(parsed.cells[1].index, 2u);  // the record *after* the tear
  EXPECT_EQ(parsed.cells.back().index, 5u);
}

TEST(JournalTest, DuplicateCellEntriesLastWinOnResume) {
  const std::string dir = temp_dir("resume_dup");
  std::filesystem::create_directories(dir);
  const std::string journal_path = dir + "/sweep.journal";
  EngineOptions options;
  options.jobs = 1;
  options.journal_path = journal_path;
  (void)run_sweep(tiny_spec(), options);

  // A re-anchored shard can journal a cell twice (the dead incarnation's
  // record plus its replacement's).  Resume must honor the newest record.
  Journal journal = *load_journal(journal_path);
  ASSERT_EQ(journal.cells.size(), 6u);
  ManifestCell rewritten = journal.cells[0];
  rewritten.metrics[0].second.mean = 777.0;
  journal.cells.push_back(rewritten);
  atomic_write_file(journal_path, journal_to_jsonl(journal));

  EngineOptions resume_options;
  resume_options.jobs = 1;
  resume_options.resume_journal = journal_path;
  const SweepRun resumed = run_sweep(tiny_spec(), resume_options);
  EXPECT_EQ(resumed.cells_resumed, 6u);  // unique cells, not records
  EXPECT_EQ(resumed.units_run, 0u);
  EXPECT_EQ(resumed.manifest.cells[0].metrics[0].second.mean, 777.0);
}

TEST(JournalTest, TwoShardsJournalingTheSameCellHashResumeByteIdentical) {
  // Two workers that both computed a cell (a reassignment that raced the
  // original's journal flush) produce identical records — replaying their
  // concatenation stays byte-identical to the uninterrupted run.
  const std::string dir = temp_dir("resume_twoshard");
  std::filesystem::create_directories(dir);
  const std::string path_a = dir + "/shard-a.journal";
  const std::string path_b = dir + "/shard-b.journal";
  EngineOptions options;
  options.jobs = 1;
  options.journal_path = path_a;
  const std::string reference = to_json(run_sweep(tiny_spec(), options).manifest);
  options.journal_path = path_b;
  (void)run_sweep(tiny_spec(), options);

  // Append shard B's cell records (minus its header) onto shard A.
  std::istringstream in(read_file(path_b));
  std::string merged = read_file(path_a);
  std::string line;
  std::getline(in, line);  // drop header
  while (std::getline(in, line)) merged += line + "\n";
  atomic_write_file(path_a, merged);

  EngineOptions resume_options;
  resume_options.jobs = 1;
  resume_options.resume_journal = path_a;
  const SweepRun resumed = run_sweep(tiny_spec(), resume_options);
  EXPECT_EQ(resumed.cells_resumed, 6u);
  EXPECT_EQ(resumed.units_run, 0u);
  EXPECT_EQ(to_json(resumed.manifest), reference);
}

TEST(JournalTest, CancelledRunJournalsCompletedCellsAndResumeIsBitIdentical) {
  const std::string dir = temp_dir("resume");
  std::filesystem::create_directories(dir);
  const std::string journal_path = dir + "/sweep.journal";

  // Uninterrupted reference, serial.
  EngineOptions reference_options;
  reference_options.jobs = 1;
  const std::string reference =
      to_json(run_sweep(tiny_spec(), reference_options).manifest);

  // Interrupted run: the runner itself trips the cancel flag partway in
  // (after 10 of 24 units: cells 0-1 complete, cell 2 in flight).
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  auto units_done = std::make_shared<std::atomic<int>>(0);
  SweepSpec spec = tiny_spec();
  const auto inner = spec.run;
  spec.run = [cancel, units_done, inner](const Cell& cell,
                                         std::uint64_t rep_seed) {
    obs::RunReport report = inner(cell, rep_seed);
    if (units_done->fetch_add(1) + 1 >= 10) cancel->store(true);
    return report;
  };
  EngineOptions interrupted_options;
  interrupted_options.jobs = 1;
  interrupted_options.journal_path = journal_path;
  interrupted_options.cancel = cancel.get();
  const SweepRun interrupted = run_sweep(spec, interrupted_options);
  EXPECT_EQ(interrupted.manifest.outcome, RunOutcome::kInterrupted);
  EXPECT_GE(interrupted.cells_skipped, 1u);
  for (const ManifestCell& cell : interrupted.manifest.cells) {
    EXPECT_NE(cell.status, CellStatus::kFailed);
    if (cell.status == CellStatus::kSkipped) {
      EXPECT_TRUE(cell.metrics.empty());
    }
  }

  // The journal holds exactly the cleanly completed cells.
  const std::optional<Journal> journal = load_journal(journal_path);
  ASSERT_TRUE(journal.has_value());
  EXPECT_EQ(journal->cells.size(),
            tiny_spec().cells().size() - interrupted.cells_skipped);

  // Resume with the pristine spec: only the remainder runs, and the final
  // manifest is byte-identical to the uninterrupted reference.
  EngineOptions resume_options;
  resume_options.jobs = 1;
  resume_options.resume_journal = journal_path;
  const SweepRun resumed = run_sweep(tiny_spec(), resume_options);
  EXPECT_EQ(resumed.cells_resumed, journal->cells.size());
  EXPECT_EQ(resumed.units_run,
            interrupted.cells_skipped * 4u);  // remainder only
  EXPECT_EQ(resumed.manifest.outcome, RunOutcome::kComplete);
  EXPECT_EQ(to_json(resumed.manifest), reference);
}

TEST(JournalTest, ResumeRejectsAForeignSweep) {
  const std::string dir = temp_dir("resume_mismatch");
  std::filesystem::create_directories(dir);
  const std::string journal_path = dir + "/sweep.journal";
  EngineOptions options;
  options.journal_path = journal_path;
  (void)run_sweep(tiny_spec(), options);

  SweepSpec reseeded = tiny_spec();
  reseeded.seed = 1234;  // different content hash → different sweep
  EngineOptions resume_options;
  resume_options.resume_journal = journal_path;
  EXPECT_THROW((void)run_sweep(reseeded, resume_options), PreconditionError);
}

TEST(JournalTest, ResumeFromMissingJournalRunsTheFullSweep) {
  EngineOptions options;
  options.resume_journal = temp_dir("no_such") + "/gone.journal";
  const SweepRun run = run_sweep(tiny_spec(), options);
  EXPECT_EQ(run.cells_resumed, 0u);
  EXPECT_EQ(run.units_run, 24u);
  EXPECT_EQ(run.manifest.outcome, RunOutcome::kComplete);
}

TEST(JournalTest, FailedCellsRerunOnResume) {
  const std::string dir = temp_dir("resume_failed");
  std::filesystem::create_directories(dir);
  const std::string journal_path = dir + "/sweep.journal";

  EngineOptions options;
  options.failure_budget_pct = 50.0;
  options.journal_path = journal_path;
  const SweepRun partial = run_sweep(failing_spec({0}), options);
  EXPECT_EQ(partial.manifest.outcome, RunOutcome::kPartial);
  // Journal records only the four healthy cells.
  EXPECT_EQ(load_journal(journal_path)->cells.size(), 4u);

  // Resuming with a fixed runner completes the sweep bit-identically to a
  // clean run of that fixed spec.
  SweepSpec fixed = failing_spec({});  // same grid/hash inputs, no failures
  EngineOptions resume_options;
  resume_options.resume_journal = journal_path;
  const SweepRun resumed = run_sweep(fixed, resume_options);
  EXPECT_EQ(resumed.cells_resumed, 4u);
  EXPECT_EQ(resumed.units_run, 8u);
  EXPECT_EQ(resumed.manifest.outcome, RunOutcome::kComplete);
  EXPECT_EQ(to_json(resumed.manifest), to_json(run_sweep(fixed).manifest));
}

// ------------------------------------------------ v2 schema / atomic write

TEST(ManifestV2Test, FailureRecordsRoundTripByteForByte) {
  EngineOptions options;
  options.failure_budget_pct = 50.0;
  options.retry.max_attempts = 2;
  options.retry.backoff_initial_ms = 0;
  const Manifest manifest = run_sweep(failing_spec({0}), options).manifest;
  EXPECT_EQ(manifest.outcome, RunOutcome::kPartial);
  const std::string json = to_json(manifest);
  const Manifest parsed = parse_manifest(json);
  EXPECT_EQ(parsed.outcome, RunOutcome::kPartial);
  ASSERT_EQ(parsed.cells.size(), 6u);
  EXPECT_EQ(parsed.cells[4].status, CellStatus::kFailed);
  ASSERT_EQ(parsed.cells[4].failures.size(), 1u);
  EXPECT_EQ(parsed.cells[4].failures[0], manifest.cells[4].failures[0]);
  EXPECT_EQ(to_json(parsed), json);  // byte-stable round trip
}

TEST(ManifestV2Test, V1DocumentsParseWithDefaults) {
  // A v1 manifest (no outcome/status/failures keys) as written before the
  // failure-semantics schema bump.
  const std::string v1 =
      "{\"schema\":\"gridtrust.lab.manifest/v1\",\"spec\":\"old\","
      "\"title\":\"t\",\"spec_hash\":\"00\",\"git_rev\":\"unknown\","
      "\"seed\":7,\"replications\":2,\"tolerance_pct\":1,\"cells\":[\n"
      "{\"index\":0,\"params\":{\"alpha\":1},\"param_hash\":\"00\","
      "\"replications\":2,\"metrics\":{\"value\":{\"mean\":1.5,\"ci95\":0.1,"
      "\"n\":2}}}\n]}\n";
  const Manifest parsed = parse_manifest(v1);
  EXPECT_EQ(parsed.outcome, RunOutcome::kComplete);
  ASSERT_EQ(parsed.cells.size(), 1u);
  EXPECT_EQ(parsed.cells[0].status, CellStatus::kOk);
  EXPECT_TRUE(parsed.cells[0].failures.empty());
  // Re-serialization upgrades in place to v2.
  EXPECT_NE(to_json(parsed).find("gridtrust.lab.manifest/v2"),
            std::string::npos);
  EXPECT_NE(to_json(parsed).find("\"status\":\"ok\""), std::string::npos);
}

TEST(ManifestV2Test, StatusMismatchIsACompareViolation) {
  const Manifest base = run_sweep(tiny_spec()).manifest;
  Manifest failed = base;
  failed.cells[1].status = CellStatus::kFailed;
  const CompareResult result = compare_manifests(failed, base);
  EXPECT_FALSE(result.pass);
  bool found = false;
  for (const Violation& v : result.violations) {
    if (v.what.find("status failed") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CacheTest, CorruptEntryIsEvictedAndCounted) {
  const SweepSpec spec = tiny_spec();
  EngineOptions options;
  options.cache_dir = temp_dir("evict");
  (void)run_sweep(spec, options);
  for (const auto& entry :
       std::filesystem::directory_iterator(options.cache_dir)) {
    std::FILE* f = std::fopen(entry.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{torn", f);
    std::fclose(f);
  }

  obs::MetricsRegistry registry;
  obs::install(&registry);
  const SweepRun rerun = run_sweep(spec, options);
  const obs::Snapshot snap = registry.snapshot();
  obs::install(nullptr);

  EXPECT_EQ(rerun.cache_hits, 0u);
  EXPECT_EQ(snap.counters.at("lab.cache_corrupt_evictions"), 6.0);
  // Eviction deleted the corrupt files; the rerun then re-stored clean
  // entries, so a third run hits everything.
  EXPECT_EQ(run_sweep(spec, options).cache_hits, 6u);
}

TEST(AtomicWriteTest, TornWriterSimulationNeverExposesAPartialManifest) {
  // Simulate the classic torn-write hazard: a stale temp file (from a
  // crashed writer) next to the target must not corrupt a later atomic
  // write, and the target transitions old-content → new-content with no
  // intermediate state observable through the final path.
  const std::string dir = temp_dir("atomic");
  std::filesystem::create_directories(dir);
  const std::string target = dir + "/manifest.json";
  atomic_write_file(target, "old complete document\n");

  {
    std::ofstream stale(target + ".tmp.99999");
    stale << "{torn garbage from a dead writer";
  }
  const Manifest manifest = run_sweep(tiny_spec()).manifest;
  atomic_write_file(target, to_json(manifest));
  // The read-back parses — no interleaving with the stale temp content.
  EXPECT_EQ(to_json(parse_manifest(read_file(target))), to_json(manifest));
}

TEST(JsonInTest, ParsesScalarsContainersAndEscapes) {
  const obs::JsonValue value = obs::parse_json(
      "{\"a\":[1,2.5,-3e2],\"b\":{\"nested\":true},\"s\":\"q\\\"\\u0041\","
      "\"z\":null}");
  EXPECT_EQ(value.at("a").as_array().size(), 3u);
  EXPECT_EQ(value.at("a").as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(value.at("b").at("nested").as_bool());
  EXPECT_EQ(value.at("s").as_string(), "q\"A");
  EXPECT_TRUE(value.at("z").is_null());
  EXPECT_FALSE(value.has("missing"));
}

TEST(JsonInTest, RejectsMalformedDocuments) {
  EXPECT_THROW((void)obs::parse_json(""), PreconditionError);
  EXPECT_THROW((void)obs::parse_json("{\"a\":1,}"), PreconditionError);
  EXPECT_THROW((void)obs::parse_json("[1 2]"), PreconditionError);
  EXPECT_THROW((void)obs::parse_json("{\"a\":1} trailing"),
               PreconditionError);
  EXPECT_THROW((void)obs::parse_json("\"unterminated"), PreconditionError);
}

}  // namespace
}  // namespace gridtrust::lab
