// Lab sweep engine: grid expansion, seed derivation, parallel determinism,
// the result cache, manifest round-trips, and baseline comparison gates.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "common/error.hpp"
#include "lab/cache.hpp"
#include "lab/catalog.hpp"
#include "lab/engine.hpp"
#include "lab/manifest.hpp"
#include "lab/spec.hpp"
#include "obs/json_in.hpp"

namespace gridtrust::lab {
namespace {

/// A tiny synthetic sweep (no simulator) whose results are a pure function
/// of (cell, rep_seed) — fast enough to run hundreds of times in tests.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.name = "tiny";
  spec.title = "synthetic test sweep";
  spec.axes = {{"alpha", {1, 2, 3}}, {"mode", {"fast", "slow"}}};
  spec.replications = 4;
  spec.seed = 99;
  spec.run = [](const Cell& cell, std::uint64_t rep_seed) {
    obs::RunReport report;
    report.set("value", cell.number("alpha") * 10.0 +
                            static_cast<double>(rep_seed % 1000) / 1000.0);
    report.set("mode_len", static_cast<double>(cell.text("mode").size()));
    return report;
  };
  spec.finalize = [](const Cell& cell, AggregateSet& aggregate) {
    aggregate.set_derived("alpha_echo", cell.number("alpha"));
  };
  return spec;
}

std::string temp_dir(const std::string& leaf) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("gridtrust_lab_" + leaf);
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(SweepSpecTest, ExpandsCellsRowMajorWithLastAxisFastest) {
  const std::vector<Cell> cells = tiny_spec().cells();
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].label(), "alpha=1 mode=fast");
  EXPECT_EQ(cells[1].label(), "alpha=1 mode=slow");
  EXPECT_EQ(cells[2].label(), "alpha=2 mode=fast");
  EXPECT_EQ(cells[5].label(), "alpha=3 mode=slow");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
}

TEST(SweepSpecTest, ContentHashTracksEveryDeclaredField) {
  const SweepSpec base = tiny_spec();
  SweepSpec edited = base;
  EXPECT_EQ(base.content_hash(), edited.content_hash());
  edited.version = "2";
  EXPECT_NE(base.content_hash(), edited.content_hash());
  edited = base;
  edited.seed = 100;
  EXPECT_NE(base.content_hash(), edited.content_hash());
  edited = base;
  edited.axes[0].values.push_back(4);
  EXPECT_NE(base.content_hash(), edited.content_hash());
  edited = base;
  edited.replications = 5;
  EXPECT_NE(base.content_hash(), edited.content_hash());
  // Presentation fields do not participate.
  edited = base;
  edited.title = "different title";
  edited.display_metrics = {"value"};
  EXPECT_EQ(base.content_hash(), edited.content_hash());
}

TEST(SweepSpecTest, RepSeedsAreDistinctAcrossCellsAndReps) {
  const std::vector<Cell> cells = tiny_spec().cells();
  std::set<std::uint64_t> seeds;
  for (const Cell& cell : cells) {
    const std::uint64_t hash = cell_param_hash(cell);
    for (std::size_t rep = 0; rep < 64; ++rep) {
      seeds.insert(derive_rep_seed(99, hash, rep));
    }
  }
  EXPECT_EQ(seeds.size(), cells.size() * 64);
  // Pure function: recomputing gives the same stream.
  EXPECT_EQ(derive_rep_seed(99, cell_param_hash(cells[0]), 3),
            derive_rep_seed(99, cell_param_hash(cells[0]), 3));
}

TEST(EngineTest, ParallelRunsAreBitIdenticalToSerial) {
  const SweepSpec spec = tiny_spec();
  EngineOptions serial;
  serial.jobs = 1;
  EngineOptions parallel;
  parallel.jobs = 4;
  const std::string a = to_json(run_sweep(spec, serial).manifest);
  const std::string b = to_json(run_sweep(spec, parallel).manifest);
  EXPECT_EQ(a, b);
  EngineOptions shared;
  shared.jobs = 0;  // process-wide pool
  EXPECT_EQ(a, to_json(run_sweep(spec, shared).manifest));
}

TEST(EngineTest, AggregatesMeanAndDerivedMetricsPerCell) {
  const SweepRun run = run_sweep(tiny_spec());
  ASSERT_EQ(run.manifest.cells.size(), 6u);
  EXPECT_EQ(run.units_run, 6u * 4u);
  for (const ManifestCell& cell : run.manifest.cells) {
    ASSERT_EQ(cell.metrics.size(), 3u);
    EXPECT_EQ(cell.metrics[0].first, "value");
    EXPECT_EQ(cell.metrics[0].second.n, 4u);
    EXPECT_EQ(cell.metrics[2].first, "alpha_echo");
    EXPECT_EQ(cell.metrics[2].second.n, 0u);  // derived
    // alpha_echo equals the cell's alpha parameter.
    EXPECT_EQ(cell.metrics[2].second.mean, cell.params[0].second.number());
  }
}

TEST(EngineTest, SeedAndReplicationOverridesChangeTheSpecHash) {
  const SweepSpec spec = tiny_spec();
  EngineOptions options;
  const Manifest base = run_sweep(spec, options).manifest;
  options.seed = 7;
  options.replications = 2;
  const Manifest overridden = run_sweep(spec, options).manifest;
  EXPECT_NE(base.spec_hash, overridden.spec_hash);
  EXPECT_EQ(overridden.seed, 7u);
  EXPECT_EQ(overridden.replications, 2u);
  EXPECT_EQ(overridden.cells[0].replications, 2u);
}

TEST(CacheTest, SecondRunHitsAndMatchesByteForByte) {
  const SweepSpec spec = tiny_spec();
  EngineOptions options;
  options.cache_dir = temp_dir("hit");
  const SweepRun first = run_sweep(spec, options);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.units_run, 24u);
  const SweepRun second = run_sweep(spec, options);
  EXPECT_EQ(second.cache_hits, 6u);
  EXPECT_EQ(second.units_run, 0u);
  EXPECT_EQ(to_json(first.manifest), to_json(second.manifest));
}

TEST(CacheTest, SpecEditsInvalidateTheCache) {
  SweepSpec spec = tiny_spec();
  EngineOptions options;
  options.cache_dir = temp_dir("invalidate");
  (void)run_sweep(spec, options);

  // A version bump misses every cell.
  spec.version = "2";
  EXPECT_EQ(run_sweep(spec, options).cache_hits, 0u);

  // A seed override misses too (the key folds the effective seed).
  spec = tiny_spec();
  EngineOptions reseeded = options;
  reseeded.seed = 1234;
  EXPECT_EQ(run_sweep(spec, reseeded).cache_hits, 0u);

  // Adding an axis value re-runs only the new cells.
  spec = tiny_spec();
  spec.axes[0].values.push_back(4);
  const SweepRun grown = run_sweep(spec, options);
  EXPECT_EQ(grown.cache_hits, 6u);
  EXPECT_EQ(grown.units_run, 2u * 4u);  // the two new alpha=4 cells
}

TEST(CacheTest, CorruptEntryIsAMiss) {
  const SweepSpec spec = tiny_spec();
  EngineOptions options;
  options.cache_dir = temp_dir("corrupt");
  (void)run_sweep(spec, options);
  for (const auto& entry :
       std::filesystem::directory_iterator(options.cache_dir)) {
    std::FILE* f = std::fopen(entry.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{not json", f);
    std::fclose(f);
  }
  const SweepRun rerun = run_sweep(spec, options);
  EXPECT_EQ(rerun.cache_hits, 0u);
  EXPECT_EQ(rerun.units_run, 24u);
}

TEST(ManifestTest, RoundTripsThroughJsonByteForByte) {
  const Manifest manifest = run_sweep(tiny_spec()).manifest;
  const std::string json = to_json(manifest);
  const Manifest parsed = parse_manifest(json);
  EXPECT_EQ(parsed.spec, "tiny");
  EXPECT_EQ(parsed.seed, 99u);
  EXPECT_EQ(parsed.cells.size(), 6u);
  EXPECT_EQ(parsed.cells[3].params[1].second.text(), "slow");
  EXPECT_EQ(to_json(parsed), json);  // byte-stable round trip
}

TEST(ManifestTest, ParseRejectsWrongSchemaAndGarbage) {
  EXPECT_THROW((void)parse_manifest("{\"schema\":\"other/v9\",\"cells\":[]}"),
               PreconditionError);
  EXPECT_THROW((void)parse_manifest("not json at all"), PreconditionError);
}

TEST(CompareTest, IdenticalManifestsPassAndPerturbedMeansFail) {
  const Manifest base = run_sweep(tiny_spec()).manifest;
  const CompareResult same = compare_manifests(base, base);
  EXPECT_TRUE(same.pass);
  EXPECT_GT(same.metrics_checked, 0u);

  Manifest drifted = base;
  drifted.cells[2].metrics[0].second.mean *= 1.5;  // way past 1 %
  const CompareResult fail = compare_manifests(drifted, base);
  EXPECT_FALSE(fail.pass);
  ASSERT_EQ(fail.violations.size(), 1u);
  EXPECT_NE(fail.violations[0].where.find("value"), std::string::npos);

  // A generous explicit tolerance turns the same drift into a pass.
  CompareOptions loose;
  loose.tolerance_pct = 60.0;
  EXPECT_TRUE(compare_manifests(drifted, base, loose).pass);
}

TEST(CompareTest, StructuralMismatchesAreViolations) {
  const Manifest base = run_sweep(tiny_spec()).manifest;

  Manifest wrong_spec = base;
  wrong_spec.spec = "other";
  EXPECT_FALSE(compare_manifests(wrong_spec, base).pass);

  Manifest missing_cell = base;
  missing_cell.cells.pop_back();
  EXPECT_FALSE(compare_manifests(missing_cell, base).pass);

  Manifest missing_metric = base;
  missing_metric.cells[0].metrics.erase(
      missing_metric.cells[0].metrics.begin());
  EXPECT_FALSE(compare_manifests(missing_metric, base).pass);

  // A rebuilt binary (different git_rev) that reproduces the numbers passes.
  Manifest rebuilt = base;
  rebuilt.git_rev = "deadbeef0123";
  EXPECT_TRUE(compare_manifests(rebuilt, base).pass);
}

TEST(CatalogTest, EverySpecIsRunnableAndResolvable) {
  for (const SweepSpec& spec : builtin_specs()) {
    EXPECT_NE(spec.run, nullptr) << spec.name;
    EXPECT_FALSE(spec.axes.empty()) << spec.name;
    EXPECT_FALSE(spec.paper_ref.empty()) << spec.name;
    EXPECT_EQ(find_spec(spec.name), &spec);
    EXPECT_EQ(resolve_run_names(spec.name),
              std::vector<std::string>{spec.name});
  }
  EXPECT_EQ(resolve_run_names("tables").size(), 6u);
  EXPECT_EQ(resolve_run_names("no_such_spec").size(), 0u);
}

TEST(CatalogTest, SmokeSpecMatchesItsCommittedBaselineShape) {
  const SweepSpec* smoke = find_spec("smoke");
  ASSERT_NE(smoke, nullptr);
  const SweepRun run = run_sweep(*smoke);
  EXPECT_EQ(run.manifest.cells.size(), 1u);
  // The paired metrics the baseline gates on.
  const ManifestCell& cell = run.manifest.cells.front();
  std::set<std::string> names;
  for (const auto& [name, metric] : cell.metrics) names.insert(name);
  EXPECT_TRUE(names.count("unaware.makespan"));
  EXPECT_TRUE(names.count("aware.makespan"));
  EXPECT_TRUE(names.count("improvement_pct"));
}

TEST(JsonInTest, ParsesScalarsContainersAndEscapes) {
  const obs::JsonValue value = obs::parse_json(
      "{\"a\":[1,2.5,-3e2],\"b\":{\"nested\":true},\"s\":\"q\\\"\\u0041\","
      "\"z\":null}");
  EXPECT_EQ(value.at("a").as_array().size(), 3u);
  EXPECT_EQ(value.at("a").as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(value.at("b").at("nested").as_bool());
  EXPECT_EQ(value.at("s").as_string(), "q\"A");
  EXPECT_TRUE(value.at("z").is_null());
  EXPECT_FALSE(value.has("missing"));
}

TEST(JsonInTest, RejectsMalformedDocuments) {
  EXPECT_THROW((void)obs::parse_json(""), PreconditionError);
  EXPECT_THROW((void)obs::parse_json("{\"a\":1,}"), PreconditionError);
  EXPECT_THROW((void)obs::parse_json("[1 2]"), PreconditionError);
  EXPECT_THROW((void)obs::parse_json("{\"a\":1} trailing"),
               PreconditionError);
  EXPECT_THROW((void)obs::parse_json("\"unterminated"), PreconditionError);
}

}  // namespace
}  // namespace gridtrust::lab
