// Tests for the event-driven TRMS and the replicated experiment runner.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sched/executor.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario_builder.hpp"
#include "sim/trm_simulation.hpp"

namespace gridtrust::sim {
namespace {

sched::SchedulingProblem make_problem(std::uint64_t seed, std::size_t n,
                                      std::size_t m, double arrival_rate,
                                      sched::SchedulingPolicy policy) {
  Rng rng(seed);
  sched::CostMatrix eec(n, m);
  sched::TrustCostMatrix tc(n, m);
  std::vector<double> arrivals(n);
  double t = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      eec.at(r, c) = rng.uniform(5.0, 50.0);
      tc.at(r, c) = static_cast<int>(rng.uniform_int(0, 6));
    }
    if (arrival_rate > 0) t += rng.exponential(1.0 / arrival_rate);
    arrivals[r] = t;
  }
  return sched::SchedulingProblem(std::move(eec), std::move(tc),
                                  std::move(policy), sched::SecurityCostModel{},
                                  std::move(arrivals));
}

// --------------------------------------------------------------- immediate

TEST(TrmsImmediate, MatchesOfflineExecutor) {
  // The DES-driven immediate mode with per-arrival dispatch must reproduce
  // run_immediate exactly (same heuristic, same floors).
  const auto p =
      make_problem(1, 30, 4, 1.0, sched::trust_aware_policy());
  TrmsConfig cfg;
  cfg.mode = SchedulingMode::kImmediate;
  cfg.heuristic = "mct";
  const SimulationResult des_run = run_trms(p, cfg);
  auto mct = sched::make_mct();
  const sched::Schedule offline = sched::run_immediate(p, *mct);
  EXPECT_EQ(des_run.schedule.machine_of, offline.machine_of);
  EXPECT_NEAR(des_run.makespan, offline.makespan(), 1e-9);
  EXPECT_EQ(des_run.batches, 0u);
  EXPECT_EQ(des_run.events, 30u);
}

TEST(TrmsImmediate, AllHeuristicsProduceCompleteSchedules) {
  const auto p = make_problem(2, 25, 3, 2.0, sched::trust_unaware_policy());
  for (const std::string& name : sched::immediate_heuristic_names()) {
    TrmsConfig cfg;
    cfg.mode = SchedulingMode::kImmediate;
    cfg.heuristic = name;
    const SimulationResult result = run_trms(p, cfg);
    EXPECT_TRUE(result.schedule.complete()) << name;
    EXPECT_GT(result.makespan, 0.0) << name;
  }
}

TEST(TrmsImmediate, TasksNeverStartBeforeArrival) {
  const auto p = make_problem(3, 40, 3, 0.2, sched::trust_aware_policy());
  TrmsConfig cfg;
  cfg.mode = SchedulingMode::kImmediate;
  const SimulationResult result = run_trms(p, cfg);
  for (std::size_t r = 0; r < 40; ++r) {
    EXPECT_GE(result.schedule.start[r], p.arrival_time(r) - 1e-9);
  }
}

// --------------------------------------------------------------- batch

TEST(TrmsImmediate, FlowTimePercentilesAreOrdered) {
  const auto p = make_problem(9, 60, 4, 1.0, sched::trust_aware_policy());
  TrmsConfig cfg;
  const SimulationResult result = run_trms(p, cfg);
  EXPECT_GT(result.flow_time_p50, 0.0);
  EXPECT_GE(result.flow_time_p95, result.flow_time_p50);
  // p95 of flows cannot exceed the span of the schedule.
  EXPECT_LE(result.flow_time_p95, result.makespan + 1e-9);
  // The mean sits between the median and the tail for these right-skewed
  // queueing distributions... at minimum it must be within [min, p95+].
  EXPECT_GT(result.mean_flow_time, 0.0);
}

TEST(TrmsBatch, FormsMetaRequestsAtIntervals) {
  const auto p = make_problem(4, 50, 4, 1.0, sched::trust_aware_policy());
  TrmsConfig cfg;
  cfg.mode = SchedulingMode::kBatch;
  cfg.heuristic = "min-min";
  cfg.batch_interval = 10.0;
  const SimulationResult result = run_trms(p, cfg);
  EXPECT_TRUE(result.schedule.complete());
  EXPECT_GE(result.batches, 2u);  // 50 arrivals at rate 1 span ~50 s
  // No task may start before its batch could have formed (the first tick
  // is at t = batch_interval).
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_GE(result.schedule.start[r], cfg.batch_interval - 1e-9);
  }
}

TEST(TrmsBatch, SingleBatchEqualsOfflineBatchRun) {
  // All requests arrive at time 0 -> exactly one meta-request at the first
  // tick, equivalent to run_batch_all with ready = interval.
  const auto p = make_problem(5, 30, 4, 0.0, sched::trust_aware_policy());
  TrmsConfig cfg;
  cfg.mode = SchedulingMode::kBatch;
  cfg.heuristic = "sufferage";
  cfg.batch_interval = 5.0;
  const SimulationResult result = run_trms(p, cfg);
  EXPECT_EQ(result.batches, 1u);
  auto h = sched::make_sufferage();
  const sched::Schedule offline = sched::run_batch_all(p, *h, 5.0);
  EXPECT_EQ(result.schedule.machine_of, offline.machine_of);
  EXPECT_NEAR(result.makespan, offline.makespan(), 1e-9);
}

TEST(TrmsBatch, AllBatchHeuristicsComplete) {
  const auto p = make_problem(6, 30, 4, 1.0, sched::trust_unaware_policy());
  for (const std::string& name : sched::batch_heuristic_names()) {
    TrmsConfig cfg;
    cfg.mode = SchedulingMode::kBatch;
    cfg.heuristic = name;
    const SimulationResult result = run_trms(p, cfg);
    EXPECT_TRUE(result.schedule.complete()) << name;
  }
}

TEST(TrmsBatch, RejectsNonPositiveInterval) {
  const auto p = make_problem(7, 5, 2, 0.0, sched::trust_aware_policy());
  TrmsConfig cfg;
  cfg.mode = SchedulingMode::kBatch;
  cfg.batch_interval = 0.0;
  EXPECT_THROW(run_trms(p, cfg), PreconditionError);
}

TEST(Trms, UnknownHeuristicRejected) {
  const auto p = make_problem(8, 5, 2, 0.0, sched::trust_aware_policy());
  TrmsConfig cfg;
  cfg.heuristic = "does-not-exist";
  EXPECT_THROW(run_trms(p, cfg), PreconditionError);
}

// --------------------------------------------------------------- experiments

TEST(Experiment, ReproducibleForSeed) {
  Scenario scenario;
  scenario.tasks = 30;
  const ComparisonResult a = run_comparison(scenario, 5, 42);
  const ComparisonResult b = run_comparison(scenario, 5, 42);
  EXPECT_EQ(a.unaware.makespan.mean(), b.unaware.makespan.mean());
  EXPECT_EQ(a.aware.makespan.mean(), b.aware.makespan.mean());
  EXPECT_EQ(a.improvement_pct, b.improvement_pct);
}

TEST(Experiment, DifferentSeedsDiffer) {
  Scenario scenario;
  scenario.tasks = 30;
  const ComparisonResult a = run_comparison(scenario, 5, 1);
  const ComparisonResult b = run_comparison(scenario, 5, 2);
  EXPECT_NE(a.unaware.makespan.mean(), b.unaware.makespan.mean());
}

TEST(Experiment, ParallelPoolMatchesSerial) {
  Scenario scenario;
  scenario.tasks = 25;
  ThreadPool pool(3);
  const ComparisonResult serial = run_comparison(scenario, 8, 7);
  const ComparisonResult parallel = run_comparison(scenario, 8, 7, &pool);
  EXPECT_EQ(serial.unaware.makespan.mean(), parallel.unaware.makespan.mean());
  EXPECT_EQ(serial.aware.makespan.mean(), parallel.aware.makespan.mean());
}

TEST(Experiment, TrustAwareWinsOnAverage) {
  Scenario scenario;
  scenario.tasks = 50;
  const ComparisonResult result = run_comparison(scenario, 20, 11);
  EXPECT_GT(result.improvement_pct, 0.0);
  EXPECT_LT(result.aware.makespan.mean(), result.unaware.makespan.mean());
  EXPECT_TRUE(result.makespan_cmp.significant);
}

TEST(Experiment, UtilizationIsHighUnderSaturation) {
  Scenario scenario;
  scenario.tasks = 100;
  const ComparisonResult result = run_comparison(scenario, 10, 13);
  EXPECT_GT(result.unaware.utilization_pct.mean(), 80.0);
  EXPECT_LE(result.unaware.utilization_pct.mean(), 100.0);
  EXPECT_GT(result.aware.utilization_pct.mean(), 80.0);
}

TEST(Experiment, BatchModeScenarioRuns) {
  Scenario scenario;
  scenario.tasks = 40;
  scenario.rms.mode = SchedulingMode::kBatch;
  scenario.rms.heuristic = "min-min";
  const ComparisonResult result = run_comparison(scenario, 10, 17);
  EXPECT_GT(result.improvement_pct, 0.0);
  EXPECT_GE(result.aware.batches.mean(), 1.0);
}

TEST(Experiment, RunSingleHonorsPolicy) {
  Scenario scenario;
  scenario.tasks = 20;
  const SimulationResult aware =
      run_single(scenario, sched::trust_aware_policy(), Rng(3));
  const SimulationResult unaware =
      run_single(scenario, sched::trust_unaware_policy(), Rng(3));
  // Identical instance (same Rng), different policies.
  EXPECT_NE(aware.makespan, unaware.makespan);
}

TEST(Experiment, RequiresAtLeastOneReplication) {
  Scenario scenario;
  EXPECT_THROW(run_comparison(scenario, 0, 1), PreconditionError);
}

TEST(Experiment, PaperTableLayout) {
  Scenario s50;
  s50.tasks = 50;
  Scenario s100;
  s100.tasks = 100;
  const ComparisonResult r50 = run_comparison(s50, 3, 1);
  const ComparisonResult r100 = run_comparison(s100, 3, 1);
  const TextTable table = paper_table("Table X", {r50, r100});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Table X"), std::string::npos);
  EXPECT_NE(out.find("# of tasks"), std::string::npos);
  EXPECT_NE(out.find("Using trust"), std::string::npos);
  EXPECT_NE(out.find("Improvement"), std::string::npos);
  EXPECT_NE(out.find("50"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  // Two rows per task count plus one separator row between the groups.
  EXPECT_EQ(table.row_count(), 5u);
}

TEST(Experiment, SummaryMentionsHeuristicAndImprovement) {
  Scenario scenario;
  scenario.tasks = 20;
  const ComparisonResult result = run_comparison(scenario, 5, 3);
  const std::string s = summarize(result);
  EXPECT_NE(s.find("mct"), std::string::npos);
  EXPECT_NE(s.find("improvement"), std::string::npos);
  EXPECT_NE(s.find("n=5"), std::string::npos);
}

TEST(ScenarioBuilder, DefaultsMatchAggregateInit) {
  const Scenario built = ScenarioBuilder().build();
  const Scenario plain;
  EXPECT_EQ(built.tasks, plain.tasks);
  EXPECT_EQ(built.grid.machines, plain.grid.machines);
  EXPECT_EQ(built.rms.heuristic, plain.rms.heuristic);
  EXPECT_EQ(built.requests.arrival_rate, plain.requests.arrival_rate);
}

TEST(ScenarioBuilder, FluentChainSetsEveryField) {
  const Scenario s = ScenarioBuilder()
                         .tasks(100)
                         .machines(8)
                         .client_domains(2, 3)
                         .resource_domains(1, 2)
                         .heuristic("min-min")
                         .batch(15.0)
                         .consistent()
                         .arrival_rate(2.0)
                         .tc_weight_pct(20.0)
                         .blanket_pct(40.0)
                         .forced_f()
                         .table_correlation(
                             workload::TableCorrelation::kIndependentPerActivity)
                         .build();
  EXPECT_EQ(s.tasks, 100u);
  EXPECT_EQ(s.grid.machines, 8u);
  EXPECT_EQ(s.grid.min_client_domains, 2u);
  EXPECT_EQ(s.grid.max_client_domains, 3u);
  EXPECT_EQ(s.rms.heuristic, "min-min");
  EXPECT_EQ(s.rms.mode, SchedulingMode::kBatch);
  EXPECT_DOUBLE_EQ(s.rms.batch_interval, 15.0);
  EXPECT_EQ(s.heterogeneity.consistency, workload::Consistency::kConsistent);
  EXPECT_DOUBLE_EQ(s.requests.arrival_rate, 2.0);
  EXPECT_DOUBLE_EQ(s.security.tc_weight_pct, 20.0);
  EXPECT_DOUBLE_EQ(s.security.blanket_pct, 40.0);
  EXPECT_TRUE(s.security.table1_forced_f);
  EXPECT_EQ(s.table_correlation,
            workload::TableCorrelation::kIndependentPerActivity);
}

TEST(ScenarioBuilder, RejectsInvalidCombinations) {
  EXPECT_THROW(ScenarioBuilder().tasks(0).build(), PreconditionError);
  EXPECT_THROW(ScenarioBuilder().machines(0).build(), PreconditionError);
  EXPECT_THROW(ScenarioBuilder().client_domains(3, 2).build(),
               PreconditionError);
  EXPECT_THROW(ScenarioBuilder().arrival_rate(-1.0).build(),
               PreconditionError);
  EXPECT_THROW(ScenarioBuilder().batch(0.0).heuristic("min-min").build(),
               PreconditionError);
  // Heuristic-vs-mode agreement: min-min is batch-only, mct immediate-only.
  EXPECT_THROW(ScenarioBuilder().heuristic("min-min").immediate().build(),
               PreconditionError);
  EXPECT_THROW(ScenarioBuilder().heuristic("mct").batch().build(),
               PreconditionError);
  EXPECT_THROW(ScenarioBuilder().heuristic("no-such").build(),
               PreconditionError);
  EXPECT_NO_THROW(ScenarioBuilder().heuristic("min-min").batch().build());
}

TEST(ScenarioBuilder, BuiltScenarioRunsEndToEnd) {
  const Scenario s =
      ScenarioBuilder().tasks(10).machines(3).heuristic("mct").build();
  const ComparisonResult result = run_comparison(s, 2, 11);
  EXPECT_EQ(result.replications, 2u);
  EXPECT_GT(result.aware.makespan.mean(), 0.0);
}

TEST(RunReport, SimulationResultReportsScalars) {
  const auto problem =
      make_problem(5, 12, 3, 1.0, sched::trust_aware_policy());
  const SimulationResult result = run_trms(problem, TrmsConfig{});
  const obs::RunReport report = result.report();
  EXPECT_DOUBLE_EQ(report.get("makespan"), result.makespan);
  EXPECT_DOUBLE_EQ(report.get("events"),
                   static_cast<double>(result.events));
  EXPECT_DOUBLE_EQ(report.get("utilization_pct"), result.utilization_pct);
}

TEST(RunReport, ComparisonResultReportsBothArms) {
  Scenario scenario;
  scenario.tasks = 10;
  const ComparisonResult result = run_comparison(scenario, 3, 5);
  const obs::RunReport report = result.report();
  EXPECT_DOUBLE_EQ(report.get("replications"), 3.0);
  EXPECT_DOUBLE_EQ(report.get("unaware.makespan"),
                   result.unaware.makespan.mean());
  EXPECT_DOUBLE_EQ(report.get("aware.makespan"),
                   result.aware.makespan.mean());
  EXPECT_DOUBLE_EQ(report.get("improvement_pct"), result.improvement_pct);
  EXPECT_TRUE(report.has("makespan_cmp.ci95_diff"));
}

}  // namespace
}  // namespace gridtrust::sim
