// Tests for the Grid system model: activities, domains, machines, builders,
// and the randomized topology of §5.3.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "grid/activity.hpp"
#include "grid/grid_system.hpp"
#include "grid/request.hpp"

namespace gridtrust::grid {
namespace {

// ---------------------------------------------------------------- activities

TEST(ActivityCatalog, AddAndLookup) {
  ActivityCatalog catalog;
  const ActivityId print = catalog.add("print");
  const ActivityId store = catalog.add("store");
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.name(print), "print");
  EXPECT_EQ(catalog.id_of("store"), store);
  EXPECT_TRUE(catalog.contains("print"));
  EXPECT_FALSE(catalog.contains("render"));
}

TEST(ActivityCatalog, RejectsDuplicatesAndEmpty) {
  ActivityCatalog catalog;
  catalog.add("print");
  EXPECT_THROW(catalog.add("print"), PreconditionError);
  EXPECT_THROW(catalog.add(""), PreconditionError);
  EXPECT_THROW(catalog.id_of("missing"), PreconditionError);
  EXPECT_THROW(catalog.name(5), PreconditionError);
}

TEST(ActivityCatalog, StandardHasEightDistinctActivities) {
  const ActivityCatalog catalog = ActivityCatalog::standard();
  EXPECT_EQ(catalog.size(), 8u);
  EXPECT_TRUE(catalog.contains("execute"));
  EXPECT_TRUE(catalog.contains("store"));
  EXPECT_TRUE(catalog.contains("print"));
  EXPECT_TRUE(catalog.contains("display"));
}

// ---------------------------------------------------------------- domains

TEST(ResourceDomain, EmptySupportMeansEverything) {
  ResourceDomain rd;
  EXPECT_TRUE(rd.supports(0));
  EXPECT_TRUE(rd.supports(99));
  rd.supported_activities = {1, 2};
  EXPECT_FALSE(rd.supports(0));
  EXPECT_TRUE(rd.supports(2));
}

TEST(Request, EffectiveRtlIsTheMaxOfBothSides) {
  Request r;
  r.client_rtl = trust::TrustLevel::kB;
  r.resource_rtl = trust::TrustLevel::kE;
  EXPECT_EQ(r.effective_rtl(), trust::TrustLevel::kE);
  r.resource_rtl = trust::TrustLevel::kA;
  EXPECT_EQ(r.effective_rtl(), trust::TrustLevel::kB);
}

// ---------------------------------------------------------------- builder

TEST(GridSystemBuilder, BuildsWellFormedSystem) {
  GridSystemBuilder builder(ActivityCatalog::standard());
  const GridDomainId campus = builder.add_grid_domain("campus");
  const GridDomainId lab = builder.add_grid_domain("lab");
  builder.add_machine(campus, "c1");
  builder.add_machine(campus, "c2");
  const MachineId l1 = builder.add_machine(lab, "l1");
  builder.set_default_rtls(lab, trust::TrustLevel::kD, trust::TrustLevel::kC);
  const GridSystem grid = builder.build();

  EXPECT_EQ(grid.grid_domains().size(), 2u);
  EXPECT_EQ(grid.resource_domains().size(), 2u);
  EXPECT_EQ(grid.client_domains().size(), 2u);
  EXPECT_EQ(grid.machines().size(), 3u);
  EXPECT_EQ(grid.domain_of_machine(l1), grid.grid_domains()[lab].resource_domain);
  EXPECT_EQ(grid.resource_domain(1).default_required_level,
            trust::TrustLevel::kD);
  EXPECT_EQ(grid.client_domain(1).default_required_level,
            trust::TrustLevel::kC);
  EXPECT_EQ(grid.machines_in(0).size(), 2u);
  EXPECT_EQ(grid.machines_in(1).size(), 1u);
}

TEST(GridSystemBuilder, ClientsBelongToTheirDomains) {
  GridSystemBuilder builder(ActivityCatalog::standard());
  const GridDomainId campus = builder.add_grid_domain("campus");
  const GridDomainId lab = builder.add_grid_domain("lab");
  builder.add_machine(campus, "m");
  const ClientId alice = builder.add_client(campus, "alice");
  const ClientId bob = builder.add_client(lab, "bob");
  const ClientId carol = builder.add_client(campus, "carol");
  const GridSystem grid = builder.build();
  EXPECT_EQ(grid.clients().size(), 3u);
  EXPECT_EQ(grid.client(alice).name, "alice");
  EXPECT_EQ(grid.client(bob).client_domain,
            grid.grid_domains()[lab].client_domain);
  EXPECT_EQ(grid.clients_in(grid.grid_domains()[campus].client_domain),
            (std::vector<ClientId>{alice, carol}));
  EXPECT_THROW(grid.client(9), PreconditionError);
  EXPECT_THROW(grid.clients_in(9), PreconditionError);
}

TEST(GridSystem, ValidatesClientReferences) {
  GridSystemBuilder builder(ActivityCatalog::standard());
  builder.add_machine(builder.add_grid_domain("gd"), "m");
  const GridSystem base = builder.build();
  std::vector<Client> bad{{0, "x", 7}};  // unknown client domain
  EXPECT_THROW(GridSystem(base.activities(), base.grid_domains(),
                          base.resource_domains(), base.client_domains(),
                          base.machines(), bad),
               PreconditionError);
}

TEST(RandomGrid, CreatesClientsPerDomain) {
  Rng rng(4);
  RandomGridParams params;
  params.clients_per_domain = 4;
  const GridSystem grid = make_random_grid(params, rng);
  EXPECT_EQ(grid.clients().size(), 4u * grid.client_domains().size());
  for (const Client& c : grid.clients()) {
    EXPECT_LT(c.client_domain, grid.client_domains().size());
  }
  // Zero clients keeps the domain-granular model.
  Rng rng2(4);
  params.clients_per_domain = 0;
  EXPECT_TRUE(make_random_grid(params, rng2).clients().empty());
}

TEST(GridSystemBuilder, SupportedActivitiesRestrictTheRd) {
  GridSystemBuilder builder(ActivityCatalog::standard());
  const GridDomainId gd = builder.add_grid_domain("gd");
  builder.add_machine(gd, "m");
  builder.set_supported_activities(gd, {0, 3});
  const GridSystem grid = builder.build();
  EXPECT_TRUE(grid.resource_domain(0).supports(0));
  EXPECT_FALSE(grid.resource_domain(0).supports(1));
}

TEST(GridSystemBuilder, RejectsUnknownDomain) {
  GridSystemBuilder builder(ActivityCatalog::standard());
  EXPECT_THROW(builder.add_machine(0, "m"), PreconditionError);
  EXPECT_THROW(builder.set_default_rtls(3, trust::TrustLevel::kA,
                                        trust::TrustLevel::kA),
               PreconditionError);
}

TEST(GridSystemBuilder, BuildRequiresMachines) {
  GridSystemBuilder builder(ActivityCatalog::standard());
  builder.add_grid_domain("gd");
  EXPECT_THROW(builder.build(), PreconditionError);
}

TEST(GridSystem, ValidatesCrossReferences) {
  ActivityCatalog catalog = ActivityCatalog::standard();
  std::vector<GridDomain> gds{{0, "g", 0, 0}};
  std::vector<ResourceDomain> rds{{0, "r", 0, {}, trust::TrustLevel::kA}};
  std::vector<ClientDomain> cds{{0, "c", 0, trust::TrustLevel::kA}};
  // Machine points at a non-existent resource domain.
  std::vector<Machine> bad{{0, "m", 7}};
  EXPECT_THROW(
      GridSystem(catalog, gds, rds, cds, bad), PreconditionError);
  // Resource domain supports an unknown activity.
  std::vector<Machine> machines{{0, "m", 0}};
  std::vector<ResourceDomain> bad_rd{
      {0, "r", 0, {999}, trust::TrustLevel::kA}};
  EXPECT_THROW(GridSystem(catalog, gds, bad_rd, cds, machines),
               PreconditionError);
}

TEST(GridSystem, AccessorsAreBoundsChecked) {
  GridSystemBuilder builder(ActivityCatalog::standard());
  const GridDomainId gd = builder.add_grid_domain("gd");
  builder.add_machine(gd, "m");
  const GridSystem grid = builder.build();
  EXPECT_THROW(grid.machine(5), PreconditionError);
  EXPECT_THROW(grid.resource_domain(5), PreconditionError);
  EXPECT_THROW(grid.client_domain(5), PreconditionError);
  EXPECT_THROW(grid.machines_in(5), PreconditionError);
}

// ---------------------------------------------------------------- random grid

class RandomGridSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGridSweep, TopologyRespectsPaperRanges) {
  Rng rng(GetParam());
  RandomGridParams params;  // defaults: #CD,#RD ~ U[1,4], 5 machines
  const GridSystem grid = make_random_grid(params, rng);

  EXPECT_GE(grid.client_domains().size(), 1u);
  EXPECT_LE(grid.client_domains().size(), 4u);
  EXPECT_GE(grid.resource_domains().size(), 1u);
  EXPECT_LE(grid.resource_domains().size(), 4u);
  EXPECT_EQ(grid.machines().size(), 5u);

  // Every resource domain owns at least one machine.
  for (const ResourceDomain& rd : grid.resource_domains()) {
    EXPECT_GE(grid.machines_in(rd.id).size(), 1u) << "rd " << rd.id;
  }
  // Machines reference valid domains (the GridSystem constructor validated,
  // but assert the public accessors agree).
  for (const Machine& m : grid.machines()) {
    EXPECT_LT(m.resource_domain, grid.resource_domains().size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGridSweep,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(RandomGrid, DrawsCoverTheWholeRange) {
  RandomGridParams params;
  std::set<std::size_t> cd_counts;
  std::set<std::size_t> rd_counts;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const GridSystem grid = make_random_grid(params, rng);
    cd_counts.insert(grid.client_domains().size());
    rd_counts.insert(grid.resource_domains().size());
  }
  EXPECT_EQ(cd_counts, (std::set<std::size_t>{1, 2, 3, 4}));
  EXPECT_EQ(rd_counts, (std::set<std::size_t>{1, 2, 3, 4}));
}

TEST(RandomGrid, RdDrawCappedByMachineCount) {
  RandomGridParams params;
  params.machines = 2;
  params.min_resource_domains = 1;
  params.max_resource_domains = 4;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const GridSystem grid = make_random_grid(params, rng);
    EXPECT_LE(grid.resource_domains().size(), 2u);
    for (const ResourceDomain& rd : grid.resource_domains()) {
      EXPECT_GE(grid.machines_in(rd.id).size(), 1u);
    }
  }
}

TEST(RandomGrid, ValidatesParams) {
  Rng rng(1);
  RandomGridParams bad;
  bad.min_client_domains = 0;
  EXPECT_THROW(make_random_grid(bad, rng), PreconditionError);
  bad = RandomGridParams{};
  bad.min_client_domains = 5;
  bad.max_client_domains = 4;
  EXPECT_THROW(make_random_grid(bad, rng), PreconditionError);
  bad = RandomGridParams{};
  bad.machines = 0;
  EXPECT_THROW(make_random_grid(bad, rng), PreconditionError);
}

TEST(RandomGrid, DeterministicForSeed) {
  RandomGridParams params;
  Rng a(99);
  Rng b(99);
  const GridSystem g1 = make_random_grid(params, a);
  const GridSystem g2 = make_random_grid(params, b);
  EXPECT_EQ(g1.client_domains().size(), g2.client_domains().size());
  EXPECT_EQ(g1.resource_domains().size(), g2.resource_domains().size());
  for (std::size_t m = 0; m < g1.machines().size(); ++m) {
    EXPECT_EQ(g1.machines()[m].resource_domain,
              g2.machines()[m].resource_domain);
  }
}

}  // namespace
}  // namespace gridtrust::grid
