// Edge-case sweep across modules: boundary inputs that none of the
// module-focused suites exercise.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/table.hpp"
#include "des/simulator.hpp"
#include "net/link_sim.hpp"
#include "sched/executor.hpp"
#include "sched/gantt.hpp"
#include "sched/heuristic.hpp"
#include "trust/trust_table.hpp"

namespace gridtrust {
namespace {

// ---------------------------------------------------------------- tables

TEST(EdgeCases, FormatGroupedBoundaries) {
  EXPECT_EQ(format_grouped(999999.994, 2), "999,999.99");
  EXPECT_EQ(format_grouped(999.999, 2), "1,000.00");  // rounding carries
  EXPECT_EQ(format_grouped(-0.004, 2), "0.00");       // negative-zero squash
  EXPECT_EQ(format_grouped(1e12, 0), "1,000,000,000,000");
  EXPECT_THROW(format_grouped(1.0, -1), PreconditionError);
  EXPECT_THROW(format_grouped(1.0, 13), PreconditionError);
}

TEST(EdgeCases, EmptyTableStillRenders) {
  TextTable t({"only header"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("only header"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "only header\n");
  EXPECT_NE(t.to_markdown().find("| only header |"), std::string::npos);
}

// ---------------------------------------------------------------- DES

TEST(EdgeCases, RunUntilThenResumeKeepsDeferredEvent) {
  des::Simulator sim;
  bool ran = false;
  sim.schedule_at(10.0, [&] { ran = true; });
  sim.run_until(5.0);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending_events(), 1u);  // pushed back, still pending
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(EdgeCases, ZeroDelayEventRunsAtCurrentTime) {
  des::Simulator sim;
  double at = -1.0;
  sim.schedule_at(3.0, [&] {
    sim.schedule_in(0.0, [&] { at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(at, 3.0);
}

TEST(EdgeCases, CancelledHeadDoesNotStallRunUntil) {
  des::Simulator sim;
  const des::EventId head = sim.schedule_at(1.0, [] {});
  bool ran = false;
  sim.schedule_at(2.0, [&] { ran = true; });
  sim.cancel(head);
  sim.run_until(5.0);
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 5.0);
}

// ---------------------------------------------------------------- sched

sched::SchedulingProblem one_machine_problem() {
  sched::CostMatrix eec(3, 1, 10.0);
  sched::TrustCostMatrix tc(3, 1, 0);
  return sched::SchedulingProblem(std::move(eec), std::move(tc),
                                  sched::trust_aware_policy(),
                                  sched::SecurityCostModel{});
}

TEST(EdgeCases, SingleMachineSerializesEverything) {
  const sched::SchedulingProblem p = one_machine_problem();
  for (const std::string& name : sched::batch_heuristic_names()) {
    auto h = sched::make_batch(name);
    const sched::Schedule s = sched::run_batch_all(p, *h);
    EXPECT_TRUE(s.complete()) << name;
    EXPECT_NEAR(s.makespan(), 30.0, 1e-9) << name;
    EXPECT_NEAR(s.utilization_pct(), 100.0, 1e-9) << name;
  }
  for (const std::string& name : sched::immediate_heuristic_names()) {
    auto h = sched::make_immediate(name);
    const sched::Schedule s = sched::run_immediate(p, *h);
    EXPECT_NEAR(s.makespan(), 30.0, 1e-9) << name;
  }
}

TEST(EdgeCases, SingleRequestBatch) {
  sched::CostMatrix eec(1, 3);
  eec.at(0, 0) = 9;
  eec.at(0, 1) = 3;
  eec.at(0, 2) = 7;
  sched::TrustCostMatrix tc(1, 3, 0);
  const sched::SchedulingProblem p(eec, tc, sched::trust_aware_policy(),
                                   sched::SecurityCostModel{});
  for (const std::string& name : sched::batch_heuristic_names()) {
    auto h = sched::make_batch(name);
    const sched::Schedule s = sched::run_batch_all(p, *h);
    EXPECT_EQ(s.machine_of[0], 1u) << name;  // every mapper finds the min
  }
}

TEST(EdgeCases, SwitchingResetClearsItsMode) {
  // Drive Switching into MET mode, then reset; a fresh balanced state must
  // decide exactly as a brand-new instance would.
  sched::CostMatrix eec(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    eec.at(r, 0) = 10.0;
    eec.at(r, 1) = 20.0;
  }
  sched::TrustCostMatrix tc(4, 2, 0);
  const sched::SchedulingProblem p(eec, tc, sched::trust_aware_policy(),
                                   sched::SecurityCostModel{});
  auto sa = sched::make_switching(0.1, 0.2);
  const sched::Schedule first = sched::run_immediate(p, *sa);
  const sched::Schedule second = sched::run_immediate(p, *sa);  // reset()s
  EXPECT_EQ(first.machine_of, second.machine_of);
}

TEST(EdgeCases, GanttSingleColumnFloorsAreVisible) {
  const sched::SchedulingProblem p = one_machine_problem();
  auto mct = sched::make_mct();
  const sched::Schedule s = sched::run_immediate(p, *mct);
  sched::GanttOptions options;
  options.width = 9;
  const std::string chart = sched::render_gantt(p, s, options);
  EXPECT_NE(chart.find("000111222"), std::string::npos);
  EXPECT_NE(chart.find("30.0"), std::string::npos);  // axis label
}

// ---------------------------------------------------------------- trust

TEST(EdgeCases, OfferedTrustLevelToleratesRepeatedActivities) {
  trust::TrustLevelTable table(1, 1, 3);
  table.set(0, 0, 0, trust::TrustLevel::kD);
  table.set(0, 0, 1, trust::TrustLevel::kB);
  const std::size_t acts[] = {0, 1, 1, 0};
  EXPECT_EQ(table.offered_trust_level(0, 0, acts), trust::TrustLevel::kB);
}

// ---------------------------------------------------------------- net

TEST(EdgeCases, LinkSimAggregateRateNeverExceedsResources) {
  const net::LinkProfile link = net::gigabit_ethernet_link();
  const net::HostProfile host = net::piii_866_host(link);
  const net::SharedLinkSimulator sim(host, link);
  const auto report = sim.stage_parallel(6, Megabytes(50), net::Protocol::kRcp);
  // Aggregate throughput cannot beat the shared disk.
  EXPECT_LE(report.aggregate_rate_mb_s, host.disk.value() + 1e-6);
  const auto scp = sim.stage_parallel(6, Megabytes(50), net::Protocol::kScp);
  // ...nor can secure flows beat the shared cipher CPU.
  EXPECT_LE(scp.aggregate_rate_mb_s, host.cipher.value() + 1e-6);
}

TEST(EdgeCases, TinyTransfersAreHandshakeBound) {
  const net::LinkProfile link = net::gigabit_ethernet_link();
  const net::TransferModel model(net::piii_866_host(link), link);
  const auto result = model.transfer(Megabytes(0.01), net::Protocol::kScp);
  EXPECT_EQ(result.chunks, 1u);
  EXPECT_GT(result.handshake_s / result.duration_s, 0.9);
}

}  // namespace
}  // namespace gridtrust
