// Tests for the gridtrust::chaos subsystem: adversary behavior strategies,
// fault injection (static and DES-driven), the campaign driver's robustness
// metrics, and the determinism / clean-bit-identity contracts.
#include <gtest/gtest.h>

#include <cmath>

#include "chaos/behavior.hpp"
#include "chaos/campaign.hpp"
#include "chaos/config.hpp"
#include "chaos/faults.hpp"
#include "common/error.hpp"
#include "des/simulator.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario_builder.hpp"
#include "trust/trust_engine.hpp"

namespace gridtrust {
namespace {

// ---------------------------------------------------------------------------
// Hostile transaction histories against the trust engine (satellite: the
// engine-level view of oscillating and whitewashing adversaries).

trust::TrustEngineConfig engine_config() {
  trust::TrustEngineConfig config;
  config.learning_rate = 0.3;
  return config;
}

TEST(ChaosTrustEngine, OscillatingHistoryAccruesDistrustMonotonically) {
  // Entity 1 serves entity 0: three good rounds, then three bad, repeating.
  // During each malicious burst the direct level must fall monotonically,
  // and the score at the end of each burst must not exceed the score at the
  // end of the previous burst: averaging cannot launder an on-off attacker
  // back to a clean slate while the attacks continue.
  trust::TrustEngine engine(engine_config(), 2, 1);
  double time = 0.0;
  double previous_burst_end = 7.0;  // above any reachable level
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int i = 0; i < 3; ++i) {
      engine.record_transaction({0, 1, 0, time, 5.5});
      time += 1.0;
    }
    double last = engine.direct_record(0, 1, 0)->level;
    for (int i = 0; i < 3; ++i) {
      engine.record_transaction({0, 1, 0, time, 1.5});
      time += 1.0;
      const double now = engine.direct_record(0, 1, 0)->level;
      EXPECT_LT(now, last) << "distrust must accrue within a burst";
      last = now;
    }
    EXPECT_LE(last, previous_burst_end + 1e-12)
        << "burst-end level must not recover across cycles";
    previous_burst_end = last;
  }
  // After four attack cycles the EWMA sits well below the honest mean.
  EXPECT_LT(engine.direct_record(0, 1, 0)->level, 4.0);
}

TEST(ChaosTrustEngine, RecoveryAfterMisbehaviorIsDecayBounded) {
  // A domain that misbehaved and then turns honest recovers, but each
  // honest observation moves the level by at most learning_rate times the
  // remaining gap — no single good transaction can whitewash history.
  trust::TrustEngine engine(engine_config(), 2, 1);
  double time = 0.0;
  for (int i = 0; i < 6; ++i) {
    engine.record_transaction({0, 1, 0, time, 1.5});
    time += 1.0;
  }
  const double rate = engine.config().learning_rate;
  double level = engine.direct_record(0, 1, 0)->level;
  for (int i = 0; i < 10; ++i) {
    engine.record_transaction({0, 1, 0, time, 6.0});
    time += 1.0;
    const double now = engine.direct_record(0, 1, 0)->level;
    EXPECT_GT(now, level);
    EXPECT_LE(now, level + rate * (6.0 - level) + 1e-12)
        << "recovery step exceeds the EWMA bound";
    level = now;
  }
  EXPECT_LT(level, 6.0);
}

TEST(ChaosTrustEngine, ForgetErasesBothDirectionsAndKeepsHistoryCount) {
  trust::TrustEngine engine(engine_config(), 3, 1);
  engine.record_transaction({0, 1, 0, 0.0, 2.0});
  engine.record_transaction({1, 0, 0, 0.0, 3.0});
  engine.record_transaction({0, 2, 0, 0.0, 5.0});
  const std::uint64_t before = engine.transaction_count();
  EXPECT_EQ(engine.forget(1), 2u);
  EXPECT_FALSE(engine.direct_record(0, 1, 0).has_value());
  EXPECT_FALSE(engine.direct_record(1, 0, 0).has_value());
  EXPECT_TRUE(engine.direct_record(0, 2, 0).has_value());
  EXPECT_EQ(engine.transaction_count(), before);
  // A fresh identity starts from scratch: earlier timestamps are legal again.
  engine.record_transaction({0, 1, 0, 0.0, 6.0});
  EXPECT_DOUBLE_EQ(engine.direct_record(0, 1, 0)->level, 6.0);
}

// ---------------------------------------------------------------------------
// Behavior engine.

TEST(ChaosBehavior, OscillatingPhasesFollowTheConfiguredPeriod) {
  chaos::AdversarySpec spec;
  spec.kind = chaos::BehaviorKind::kOscillating;
  spec.domain = 1;
  spec.rounds_on = 2;
  spec.rounds_off = 3;
  const chaos::BehaviorEngine engine({spec}, 3, 2);
  // Rounds 0-1 honest, 2-4 malicious, then repeat.
  for (const std::size_t round : {0u, 1u, 5u, 6u, 10u}) {
    EXPECT_FALSE(engine.rd_misbehaving(1, round)) << "round " << round;
    EXPECT_DOUBLE_EQ(engine.rd_conduct_mean(1, round, 5.0), spec.honest_mean);
  }
  for (const std::size_t round : {2u, 3u, 4u, 7u, 8u, 9u}) {
    EXPECT_TRUE(engine.rd_misbehaving(1, round)) << "round " << round;
    EXPECT_DOUBLE_EQ(engine.rd_conduct_mean(1, round, 5.0),
                     spec.malicious_mean);
  }
  // Unspec'd domains use the fallback and never misbehave.
  EXPECT_DOUBLE_EQ(engine.rd_conduct_mean(0, 3, 5.0), 5.0);
  EXPECT_FALSE(engine.rd_misbehaving(0, 3));
  EXPECT_TRUE(engine.adversarial_rd(1));
  EXPECT_FALSE(engine.adversarial_rd(0));
}

TEST(ChaosBehavior, CollusiveAllianceForgesBothDirections) {
  chaos::AdversarySpec rd_spec;
  rd_spec.side = chaos::AdversarySide::kResourceDomain;
  rd_spec.domain = 0;
  rd_spec.kind = chaos::BehaviorKind::kCollusive;
  rd_spec.alliance = 7;
  chaos::AdversarySpec cd_spec;
  cd_spec.side = chaos::AdversarySide::kClientDomain;
  cd_spec.domain = 1;
  cd_spec.kind = chaos::BehaviorKind::kCollusive;
  cd_spec.alliance = 7;
  const chaos::BehaviorEngine engine({rd_spec, cd_spec}, 2, 2);
  // Ally: ballot-stuffed 6.0.  Outsider RD: badmouthed 1.0.
  ASSERT_TRUE(engine.forged_report(1, 0).has_value());
  EXPECT_DOUBLE_EQ(*engine.forged_report(1, 0), 6.0);
  ASSERT_TRUE(engine.forged_report(1, 1).has_value());
  EXPECT_DOUBLE_EQ(*engine.forged_report(1, 1), 1.0);
  // Honest CDs report honestly.
  EXPECT_FALSE(engine.forged_report(0, 0).has_value());
  // The collusive CD's own conduct stays at the fallback (its attack is the
  // report, not the conduct).
  EXPECT_DOUBLE_EQ(engine.cd_conduct_mean(1, 0, 5.2), 5.2);
  const auto pairs = engine.collusive_pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<std::size_t, std::size_t>{1, 0}));
}

TEST(ChaosBehavior, WhitewashTriggersOnlyBelowThreshold) {
  chaos::AdversarySpec spec;
  spec.kind = chaos::BehaviorKind::kWhitewashing;
  spec.domain = 0;
  spec.whitewash_threshold = 2.5;
  const chaos::BehaviorEngine engine({spec}, 1, 1);
  EXPECT_FALSE(engine.should_whitewash(0, 3.0));
  EXPECT_TRUE(engine.should_whitewash(0, 2.5));
  EXPECT_TRUE(engine.should_whitewash(0, 1.2));
}

TEST(ChaosBehavior, SpecValidationRejectsBadParameters) {
  chaos::AdversarySpec off_scale;
  off_scale.malicious_mean = 0.5;
  EXPECT_THROW(chaos::validate_spec(off_scale), PreconditionError);
  chaos::AdversarySpec zero_phase;
  zero_phase.kind = chaos::BehaviorKind::kOscillating;
  zero_phase.rounds_on = 0;
  EXPECT_THROW(chaos::validate_spec(zero_phase), PreconditionError);
  chaos::AdversarySpec cd_oscillating;
  cd_oscillating.side = chaos::AdversarySide::kClientDomain;
  cd_oscillating.kind = chaos::BehaviorKind::kOscillating;
  EXPECT_THROW(chaos::validate_spec(cd_oscillating), PreconditionError);
  chaos::AdversarySpec out_of_grid;
  out_of_grid.domain = 5;
  EXPECT_THROW(chaos::BehaviorEngine({out_of_grid}, 3, 3), PreconditionError);
  chaos::AdversarySpec dup;
  dup.domain = 0;
  EXPECT_THROW(chaos::BehaviorEngine({dup, dup}, 3, 3), PreconditionError);
}

// ---------------------------------------------------------------------------
// Fault timeline and DES-driven injector.

TEST(ChaosFaults, TimelineWindowsAreHalfOpen) {
  chaos::FaultSpec crash;
  crash.kind = chaos::FaultKind::kMachineCrash;
  crash.target = 1;
  crash.at = 10.0;
  crash.duration = 5.0;
  chaos::FaultSpec slow;
  slow.kind = chaos::FaultKind::kMachineSlowdown;
  slow.target = chaos::kAllTargets;
  slow.at = 12.0;
  slow.duration = 2.0;
  slow.magnitude = 3.0;
  const chaos::FaultTimeline timeline({crash, slow});
  EXPECT_TRUE(timeline.machine_up(1, 9.9));
  EXPECT_FALSE(timeline.machine_up(1, 10.0));
  EXPECT_FALSE(timeline.machine_up(1, 14.9));
  EXPECT_TRUE(timeline.machine_up(1, 15.0));
  EXPECT_TRUE(timeline.machine_up(0, 12.0));  // crash targets machine 1 only
  EXPECT_DOUBLE_EQ(timeline.slowdown(0, 13.0), 3.0);
  EXPECT_DOUBLE_EQ(timeline.slowdown(0, 14.0), 1.0);
}

TEST(ChaosFaults, ApplyMachineFaultsPerturbsOnlyCoveredCells) {
  chaos::FaultSpec slow;
  slow.kind = chaos::FaultKind::kMachineSlowdown;
  slow.target = 0;
  slow.at = 0.0;
  slow.duration = 10.0;
  slow.magnitude = 2.0;
  const chaos::FaultTimeline timeline({slow});
  sched::CostMatrix eec(2, 2, 100.0);
  // Request 0 arrives inside the window, request 1 after it closed.
  const std::vector<double> arrivals = {5.0, 20.0};
  const chaos::FaultApplication out =
      chaos::apply_machine_faults(timeline, arrivals, eec, 1e6);
  EXPECT_DOUBLE_EQ(eec.get(0, 0), 200.0);
  EXPECT_DOUBLE_EQ(eec.get(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(eec.get(1, 0), 100.0);
  EXPECT_EQ(out.windows_applied, 1u);
  EXPECT_EQ(out.cells_perturbed, 1u);
}

TEST(ChaosFaults, InjectorTracksLiveStateThroughDesEvents) {
  chaos::FaultSpec crash;
  crash.kind = chaos::FaultKind::kMachineCrash;
  crash.target = 0;
  crash.at = 10.0;
  crash.duration = 10.0;
  chaos::FaultSpec drop;
  drop.kind = chaos::FaultKind::kReportDrop;
  drop.target = chaos::kAllTargets;
  drop.at = 15.0;
  drop.duration = 10.0;
  drop.magnitude = 0.5;
  chaos::FaultInjector injector({crash, drop}, 2);
  des::Simulator sim;
  EXPECT_EQ(injector.install(sim), 4u);
  sim.run_until(5.0);
  EXPECT_TRUE(injector.machine_up(0));
  EXPECT_EQ(injector.machines_down(), 0u);
  sim.run_until(12.0);
  EXPECT_FALSE(injector.machine_up(0));
  EXPECT_TRUE(injector.machine_up(1));
  EXPECT_EQ(injector.machines_down(), 1u);
  EXPECT_DOUBLE_EQ(injector.report_drop_probability(0), 0.0);
  sim.run_until(16.0);
  EXPECT_DOUBLE_EQ(injector.report_drop_probability(0), 0.5);
  sim.run_until(30.0);
  EXPECT_TRUE(injector.machine_up(0));
  EXPECT_DOUBLE_EQ(injector.report_drop_probability(0), 0.0);
  EXPECT_EQ(injector.faults_injected(), 2u);
}

TEST(ChaosFaults, SpecValidationRejectsBadParameters) {
  chaos::FaultSpec no_duration;
  EXPECT_THROW(chaos::validate_spec(no_duration), PreconditionError);
  chaos::FaultSpec weak_slowdown;
  weak_slowdown.duration = 1.0;
  weak_slowdown.magnitude = 0.9;
  EXPECT_THROW(chaos::validate_spec(weak_slowdown), PreconditionError);
  chaos::FaultSpec fractional_delay;
  fractional_delay.kind = chaos::FaultKind::kReportDelay;
  fractional_delay.duration = 1.0;
  fractional_delay.magnitude = 1.5;
  EXPECT_THROW(chaos::validate_spec(fractional_delay), PreconditionError);
  chaos::FaultSpec bad_target;
  bad_target.kind = chaos::FaultKind::kMachineCrash;
  bad_target.duration = 1.0;
  bad_target.target = 9;
  EXPECT_THROW(chaos::FaultInjector({bad_target}, 2), PreconditionError);
}

// ---------------------------------------------------------------------------
// Campaigns.

sim::Scenario campaign_scenario(std::vector<chaos::AdversarySpec> adversaries,
                                std::vector<chaos::FaultSpec> faults = {}) {
  return sim::ScenarioBuilder()
      .machines(6)
      .resource_domains(6, 6)
      .client_domains(2, 2)
      .heuristic("mct")
      .with_adversaries(adversaries)
      .with_faults(faults)
      .build();
}

chaos::CampaignRunConfig fast_campaign() {
  chaos::CampaignRunConfig config;
  config.rounds = 10;
  config.tasks_per_round = 24;
  return config;
}

TEST(ChaosCampaign, DetectsConsistentlyMaliciousDomains) {
  chaos::AdversarySpec spec;
  spec.kind = chaos::BehaviorKind::kMalicious;
  spec.domain = 0;
  const chaos::CampaignResult result =
      chaos::run_campaign(campaign_scenario({spec}), fast_campaign(), 11);
  EXPECT_GE(result.detection_latency_rounds, 1);
  EXPECT_DOUBLE_EQ(result.steady_misclassification, 0.0);
  EXPECT_GT(result.counters.outcomes_flipped, 0u);
  // The final table pins the adversary below the honest domains.
  double adversary_level = 0.0;
  double honest_level = 0.0;
  for (std::size_t cd = 0; cd < result.final_table.client_domains(); ++cd) {
    for (std::size_t act = 0; act < result.final_table.activities(); ++act) {
      adversary_level += trust::to_numeric(result.final_table.get(cd, 0, act));
      honest_level += trust::to_numeric(result.final_table.get(cd, 1, act));
    }
  }
  EXPECT_LT(adversary_level, honest_level);
}

TEST(ChaosCampaign, CleanCampaignDetectsImmediately) {
  const chaos::CampaignResult result =
      chaos::run_campaign(campaign_scenario({}), fast_campaign(), 11);
  EXPECT_EQ(result.detection_latency_rounds, 0);
  EXPECT_FALSE(result.counters.any());
}

TEST(ChaosCampaign, WhitewashingResetsIdentityAndDelaysDetection) {
  chaos::AdversarySpec washer;
  washer.kind = chaos::BehaviorKind::kWhitewashing;
  washer.domain = 0;
  washer.whitewash_threshold = 2.5;
  chaos::CampaignRunConfig config = fast_campaign();
  config.rounds = 14;
  const chaos::CampaignResult result =
      chaos::run_campaign(campaign_scenario({washer}), config, 11);
  EXPECT_GT(result.counters.whitewash_resets, 0u);
  // Every reset un-detects the domain, so detection cannot settle while the
  // washer keeps cycling: latency is either never (-1) or later than the
  // last observed reset allows a malicious spec to manage.
  chaos::AdversarySpec fixed = washer;
  fixed.kind = chaos::BehaviorKind::kMalicious;
  const chaos::CampaignResult baseline =
      chaos::run_campaign(campaign_scenario({fixed}), config, 11);
  ASSERT_GE(baseline.detection_latency_rounds, 0);
  if (result.detection_latency_rounds >= 0) {
    EXPECT_GT(result.detection_latency_rounds,
              baseline.detection_latency_rounds);
  }
}

TEST(ChaosCampaign, ReportDropsStarveTheTableOfEvidence) {
  chaos::AdversarySpec spec;
  spec.kind = chaos::BehaviorKind::kMalicious;
  spec.domain = 0;
  chaos::FaultSpec drop;
  drop.kind = chaos::FaultKind::kReportDrop;
  drop.target = chaos::kAllTargets;
  drop.at = 0.0;
  drop.duration = 1e9;
  drop.magnitude = 1.0;
  const chaos::CampaignResult dropped = chaos::run_campaign(
      campaign_scenario({spec}, {drop}), fast_campaign(), 11);
  const chaos::CampaignResult intact =
      chaos::run_campaign(campaign_scenario({spec}), fast_campaign(), 11);
  EXPECT_GT(dropped.counters.recommendations_dropped, 0u);
  EXPECT_EQ(dropped.counters.faults_injected, 1u);
  // With every client-side report lost, the table learns strictly less.
  EXPECT_LT(dropped.transactions, intact.transactions);
}

TEST(ChaosCampaign, DelayedReportsArriveLate) {
  chaos::FaultSpec delay;
  delay.kind = chaos::FaultKind::kReportDelay;
  delay.target = chaos::kAllTargets;
  delay.at = 0.0;
  delay.duration = 1e9;
  delay.magnitude = 2.0;
  const chaos::CampaignResult result = chaos::run_campaign(
      campaign_scenario({}, {delay}), fast_campaign(), 11);
  EXPECT_GT(result.counters.recommendations_delayed, 0u);
  EXPECT_GT(result.transactions, 0u);
}

TEST(ChaosCampaign, CrashWindowsShowUpAsMachinesDown) {
  chaos::FaultSpec crash;
  crash.kind = chaos::FaultKind::kMachineCrash;
  crash.target = 0;
  crash.at = 60.0;   // covers round 1 (round period 60)
  crash.duration = 60.0;
  const chaos::CampaignResult result = chaos::run_campaign(
      campaign_scenario({}, {crash}), fast_campaign(), 11);
  ASSERT_GE(result.rounds.size(), 3u);
  EXPECT_EQ(result.rounds[0].machines_down, 0u);
  EXPECT_EQ(result.rounds[1].machines_down, 1u);
  EXPECT_EQ(result.rounds[2].machines_down, 0u);
  EXPECT_EQ(result.counters.faults_injected, 1u);
}

// Satellite: seed determinism — equal seeds give byte-identical RunReport
// JSON, different seeds differ.
TEST(ChaosCampaign, SeedDeterminismRegression) {
  chaos::AdversarySpec spec;
  spec.kind = chaos::BehaviorKind::kOscillating;
  spec.domain = 0;
  const sim::Scenario scenario = campaign_scenario({spec});
  const chaos::CampaignRunConfig config = fast_campaign();
  const std::string a =
      chaos::run_campaign(scenario, config, 99).report().to_json();
  const std::string b =
      chaos::run_campaign(scenario, config, 99).report().to_json();
  const std::string c =
      chaos::run_campaign(scenario, config, 100).report().to_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// Acceptance: an empty CampaignConfig leaves the static experiment path
// bit-identical to pre-chaos behaviour.
TEST(ChaosCampaign, EmptyConfigKeepsExperimentsBitIdentical) {
  sim::Scenario plain = sim::ScenarioBuilder().heuristic("mct").build();
  ASSERT_TRUE(plain.chaos.empty());
  sim::Scenario with_field = plain;
  with_field.chaos = chaos::CampaignConfig{};
  const std::string a = sim::run_comparison(plain, 5, 7).report().to_json();
  const std::string b =
      sim::run_comparison(with_field, 5, 7).report().to_json();
  EXPECT_EQ(a, b);
}

TEST(ChaosStaticPath, MachineFaultsRaiseUnawareCosts) {
  // A permanent slowdown on every machine must show up in the drawn
  // instance's costs and in the comparison's fault accounting.
  chaos::FaultSpec slow;
  slow.kind = chaos::FaultKind::kMachineSlowdown;
  slow.target = chaos::kAllTargets;
  slow.at = 0.0;
  slow.duration = 1e9;
  slow.magnitude = 2.0;
  const sim::Scenario clean = sim::ScenarioBuilder().heuristic("mct").build();
  const sim::Scenario faulty =
      sim::ScenarioBuilder().heuristic("mct").with_faults({slow}).build();
  const sim::ComparisonResult clean_run = sim::run_comparison(clean, 5, 7);
  const sim::ComparisonResult faulty_run = sim::run_comparison(faulty, 5, 7);
  EXPECT_EQ(clean_run.chaos.faults_injected, 0u);
  EXPECT_EQ(faulty_run.chaos.faults_injected, 5u);  // one window x 5 reps
  EXPECT_GT(faulty_run.aware.makespan.mean(),
            clean_run.aware.makespan.mean());
  // The chaos.* keys surface in the report only for chaos scenarios.
  EXPECT_FALSE(clean_run.report().has("chaos.faults_injected"));
  EXPECT_DOUBLE_EQ(faulty_run.report().get("chaos.faults_injected"), 5.0);
}

TEST(ChaosConfig, CountersAggregateAndReport) {
  chaos::ChaosCounters a;
  a.faults_injected = 2;
  a.recommendations_forged = 3;
  chaos::ChaosCounters b;
  b.faults_injected = 1;
  b.whitewash_resets = 4;
  a += b;
  EXPECT_EQ(a.faults_injected, 3u);
  EXPECT_EQ(a.whitewash_resets, 4u);
  EXPECT_TRUE(a.any());
  obs::RunReport report;
  a.to_report(report);
  EXPECT_DOUBLE_EQ(report.get("chaos.faults_injected"), 3.0);
  EXPECT_DOUBLE_EQ(report.get("chaos.recommendations_forged"), 3.0);
  EXPECT_DOUBLE_EQ(report.get("chaos.recommendations_dropped"), 0.0);
  EXPECT_FALSE(chaos::ChaosCounters{}.any());
}

TEST(ChaosBuilder, BuildValidatesChaosConfig) {
  chaos::AdversarySpec bad;
  bad.malicious_mean = 0.0;
  EXPECT_THROW(
      sim::ScenarioBuilder().heuristic("mct").with_adversaries({bad}).build(),
      PreconditionError);
  chaos::FaultSpec ok;
  ok.kind = chaos::FaultKind::kMachineSlowdown;
  ok.duration = 5.0;
  ok.magnitude = 2.0;
  const sim::Scenario s =
      sim::ScenarioBuilder().heuristic("mct").with_faults({ok}).build();
  EXPECT_EQ(s.chaos.faults.size(), 1u);
  EXPECT_FALSE(s.chaos.empty());
}

}  // namespace
}  // namespace gridtrust
