// Tests for the observability subsystem: metric semantics, per-thread
// shard merging, exporter round-trips, the RunReport container, and the
// golden agreement between Simulator metrics and its public accessors.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "des/simulator.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace gridtrust::obs {
namespace {

/// Installs a fresh registry for the scope of one test.
class ScopedRegistry {
 public:
  ScopedRegistry() { install(&registry_); }
  ~ScopedRegistry() { install(nullptr); }
  MetricsRegistry& operator*() { return registry_; }
  MetricsRegistry* operator->() { return &registry_; }

 private:
  MetricsRegistry registry_;
};

TEST(Metrics, DisabledRecordingIsInert) {
  install(nullptr);
  const Counter counter("test.disabled_counter");
  counter.add(5.0);
  MetricsRegistry registry;
  install(&registry);
  counter.add(2.0);
  const Snapshot snap = registry.snapshot();
  install(nullptr);
  ASSERT_TRUE(snap.counters.count("test.disabled_counter"));
  EXPECT_DOUBLE_EQ(snap.counters.at("test.disabled_counter"), 2.0);
}

TEST(Metrics, CounterAccumulates) {
  ScopedRegistry registry;
  const Counter counter("test.counter_accumulates");
  counter.add();
  counter.add(2.5);
  counter.add(0.5);
  const Snapshot snap = registry->snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("test.counter_accumulates"), 4.0);
}

TEST(Metrics, GaugeIsHighWatermark) {
  ScopedRegistry registry;
  const Gauge gauge("test.gauge_watermark");
  gauge.set(3.0);
  gauge.set(10.0);
  gauge.set(7.0);  // below the watermark: ignored
  const Snapshot snap = registry->snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge_watermark"), 10.0);
}

TEST(Metrics, UntouchedMetricsAreOmitted) {
  ScopedRegistry registry;
  const Counter counter("test.never_recorded");
  (void)counter;
  const Snapshot snap = registry->snapshot();
  EXPECT_EQ(snap.counters.count("test.never_recorded"), 0u);
}

TEST(Metrics, HistogramBucketsAndMoments) {
  ScopedRegistry registry;
  const Histogram hist("test.hist_buckets", {10.0, 100.0});
  hist.observe(5.0);     // bucket 0 (<= 10)
  hist.observe(10.0);    // bucket 0 (inclusive upper bound)
  hist.observe(50.0);    // bucket 1 (<= 100)
  hist.observe(1000.0);  // overflow bucket
  const Snapshot snap = registry->snapshot();
  const HistogramSnapshot& h = snap.histograms.at("test.hist_buckets");
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 1065.0);
  EXPECT_DOUBLE_EQ(h.min, 5.0);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1065.0 / 4.0);
}

TEST(Metrics, KindMismatchThrows) {
  const Counter counter("test.kind_clash");
  (void)counter;
  EXPECT_THROW(Gauge("test.kind_clash"), PreconditionError);
}

TEST(Metrics, HistogramBoundsMismatchThrows) {
  const Histogram hist("test.bounds_clash", {1.0, 2.0});
  (void)hist;
  EXPECT_THROW(Histogram("test.bounds_clash", {1.0, 3.0}),
               PreconditionError);
}

TEST(Metrics, ReinstallStartsFresh) {
  const Counter counter("test.reinstall");
  {
    ScopedRegistry registry;
    counter.add(5.0);
    EXPECT_DOUBLE_EQ(registry->snapshot().counters.at("test.reinstall"), 5.0);
  }
  {
    ScopedRegistry registry;
    counter.add(1.0);
    // The new registry must not see the previous registry's 5.0.
    EXPECT_DOUBLE_EQ(registry->snapshot().counters.at("test.reinstall"), 1.0);
  }
}

TEST(Metrics, ThreadShardsMergeAcrossPool) {
  ScopedRegistry registry;
  const Counter counter("test.pool_counter");
  const Gauge gauge("test.pool_gauge");
  const Histogram hist("test.pool_hist", count_bounds());
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 256;
  pool.parallel_for(kTasks, [&](std::size_t i) {
    counter.add();
    gauge.set(static_cast<double>(i));
    hist.observe(static_cast<double>(i % 16));
  });
  const Snapshot snap = registry->snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("test.pool_counter"),
                   static_cast<double>(kTasks));
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.pool_gauge"),
                   static_cast<double>(kTasks - 1));
  const HistogramSnapshot& h = snap.histograms.at("test.pool_hist");
  EXPECT_EQ(h.count, kTasks);
  // More than one worker should have attached a shard (the main thread
  // may hold one too from other tests).
  EXPECT_GE(registry->shard_count(), 1u);
}

TEST(Metrics, SnapshotWhileRecordingIsConsistent) {
  ScopedRegistry registry;
  const Counter counter("test.live_counter");
  std::atomic<bool> stop{false};
  ThreadPool pool(2);
  pool.parallel_for(2, [&](std::size_t worker) {
    if (worker == 0) {
      for (int i = 0; i < 20000; ++i) counter.add();
      stop.store(true);
    } else {
      // Snapshot concurrently with the recording worker; counts must be
      // monotone and never exceed the final total.
      double last = 0.0;
      while (!stop.load()) {
        const Snapshot snap = registry->snapshot();
        const auto it = snap.counters.find("test.live_counter");
        const double now = it == snap.counters.end() ? 0.0 : it->second;
        EXPECT_GE(now, last);
        EXPECT_LE(now, 20000.0);
        last = now;
      }
    }
  });
  EXPECT_DOUBLE_EQ(registry->snapshot().counters.at("test.live_counter"),
                   20000.0);
}

TEST(Export, JsonContainsAllKinds) {
  ScopedRegistry registry;
  Counter("test.json_counter").add(3.0);
  Gauge("test.json_gauge").set(7.0);
  Histogram("test.json_hist", {1.0}).observe(0.5);
  const std::string json = to_json(registry->snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\":7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(Export, CsvRoundTrip) {
  ScopedRegistry registry;
  Counter("test.csv_counter").add(42.0);
  Gauge("test.csv_gauge").set(6.5);
  const Histogram hist("test.csv_hist", {10.0, 100.0});
  hist.observe(5.0);
  hist.observe(50.0);
  const Snapshot original = registry->snapshot();
  const Snapshot parsed = from_csv(to_csv(original));
  EXPECT_DOUBLE_EQ(parsed.counters.at("test.csv_counter"), 42.0);
  EXPECT_DOUBLE_EQ(parsed.gauges.at("test.csv_gauge"), 6.5);
  const HistogramSnapshot& h = parsed.histograms.at("test.csv_hist");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 55.0);
  EXPECT_DOUBLE_EQ(h.min, 5.0);
  EXPECT_DOUBLE_EQ(h.max, 50.0);
}

TEST(Export, ShuffledInsertionOrderIsByteIdentical) {
  // Determinism gate (gt-lint GT002 companion): the export boundary must
  // not depend on the order metrics were touched.  Two registries fed the
  // same values in reversed orders must serialize to identical bytes.
  std::string first_json, first_csv;
  {
    ScopedRegistry registry;
    Counter("order.alpha").add(1.0);
    Counter("order.beta").add(2.0);
    Gauge("order.gamma").set(3.0);
    Histogram("order.delta", {1.0, 10.0}).observe(4.0);
    first_json = to_json(registry->snapshot());
    first_csv = to_csv(registry->snapshot());
  }
  {
    ScopedRegistry registry;
    Histogram("order.delta", {1.0, 10.0}).observe(4.0);
    Gauge("order.gamma").set(3.0);
    Counter("order.beta").add(2.0);
    Counter("order.alpha").add(1.0);
    EXPECT_EQ(to_json(registry->snapshot()), first_json);
    EXPECT_EQ(to_csv(registry->snapshot()), first_csv);
  }
}

TEST(Report, ScalarAndSeriesRoundTrip) {
  RunReport report;
  report.set("makespan", 123.5);
  report.set_series("per_round", {1.0, 2.0, 3.0});
  EXPECT_TRUE(report.has("makespan"));
  EXPECT_FALSE(report.has("absent"));
  EXPECT_DOUBLE_EQ(report.get("makespan"), 123.5);
  EXPECT_EQ(report.get_series("per_round").size(), 3u);
  EXPECT_THROW(report.get("per_round"), PreconditionError);
  EXPECT_THROW(report.get("absent"), PreconditionError);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"makespan\":123.5"), std::string::npos);
  EXPECT_NE(json.find("\"per_round\":[1,2,3]"), std::string::npos);
  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("makespan,,123.5"), std::string::npos);
  EXPECT_NE(csv.find("per_round,0,1"), std::string::npos);
}

TEST(Report, MergePrefixesNames) {
  RunReport inner;
  inner.set("makespan", 10.0);
  RunReport outer;
  outer.set("tasks", 50.0);
  outer.merge("aware", inner);
  EXPECT_DOUBLE_EQ(outer.get("aware.makespan"), 10.0);
  // Insertion order is preserved across the merge.
  const std::vector<std::string> names = outer.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "tasks");
  EXPECT_EQ(names[1], "aware.makespan");
}

TEST(Trace, RecordsAndDrainsInOrder) {
  TraceSink sink(16);
  install_trace(&sink);
  trace("first", 1.0);
  trace("second", 2.0, 3.0);
  install_trace(nullptr);
  trace("after_uninstall");  // must be dropped
  const std::vector<TraceEvent> events = sink.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "first");
  EXPECT_DOUBLE_EQ(events[0].a, 1.0);
  EXPECT_STREQ(events[1].name, "second");
  EXPECT_DOUBLE_EQ(events[1].b, 3.0);
  EXPECT_LE(events[0].wall_ns, events[1].wall_ns);
}

TEST(Trace, RingDropsOldestWhenFull) {
  TraceSink sink(4);
  install_trace(&sink);
  for (int i = 0; i < 10; ++i) trace("evt", static_cast<double>(i));
  install_trace(nullptr);
  const std::vector<TraceEvent> events = sink.drain();
  EXPECT_EQ(sink.recorded(), 10u);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().a, 6.0);
  EXPECT_DOUBLE_EQ(events.back().a, 9.0);
}

// Golden check: after a cancellation-heavy run the published des.* metrics
// agree exactly with the Simulator's own accessors.
TEST(SimulatorMetrics, AgreeWithAccessors) {
  ScopedRegistry registry;
  {
    des::Simulator sim;
    std::vector<des::EventId> ids;
    for (int i = 0; i < 100; ++i) {
      ids.push_back(sim.schedule_at(static_cast<double>(i), [] {}, "tick"));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) sim.cancel(ids[i]);
    sim.run();
    sim.publish_metrics();
    const Snapshot snap = registry->snapshot();
    EXPECT_DOUBLE_EQ(snap.counters.at("des.events_executed"),
                     static_cast<double>(sim.executed_events()));
    EXPECT_DOUBLE_EQ(snap.counters.at("des.events_scheduled"),
                     static_cast<double>(sim.scheduled_events()));
    EXPECT_DOUBLE_EQ(snap.counters.at("des.events_cancelled"),
                     static_cast<double>(sim.cancelled_events()));
    EXPECT_DOUBLE_EQ(snap.gauges.at("des.heap_depth_max"),
                     static_cast<double>(sim.max_heap_depth()));
    EXPECT_EQ(snap.counters.at("des.events_executed") +
                  snap.counters.at("des.events_cancelled"),
              snap.counters.at("des.events_scheduled"));
    // Labeled events land in a per-type timing histogram.
    const auto it = snap.histograms.find("des.event_ns.tick");
    ASSERT_NE(it, snap.histograms.end());
    EXPECT_EQ(it->second.count, sim.executed_events());
  }
}

// The destructor publishes pending deltas: dropping a simulator mid-run
// must not lose its counts.
TEST(SimulatorMetrics, DestructorPublishes) {
  ScopedRegistry registry;
  const double before = [&] {
    const Snapshot snap = registry->snapshot();
    const auto it = snap.counters.find("des.events_executed");
    return it == snap.counters.end() ? 0.0 : it->second;
  }();
  {
    des::Simulator sim;
    for (int i = 0; i < 10; ++i) {
      sim.schedule_at(static_cast<double>(i), [] {});
    }
    sim.run();
  }  // destructor publishes
  const Snapshot snap = registry->snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("des.events_executed"), before + 10.0);
}

TEST(ExportScope, WritesJsonFile) {
  const std::string path =
      ::testing::TempDir() + "/gridtrust_obs_scope.metrics.json";
  {
    MetricsExportScope scope{std::string(path)};
    ASSERT_TRUE(scope.enabled());
    Counter("test.scope_counter").add(9.0);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"test.scope_counter\":9"), std::string::npos);
  EXPECT_EQ(obs::registry(), nullptr);
}

}  // namespace
}  // namespace gridtrust::obs
