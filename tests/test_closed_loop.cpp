// Tests for the closed-loop TRMS (trust evolution in the scheduling loop).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "sim/closed_loop.hpp"
#include "sim/experiment.hpp"
#include "trust/serialization.hpp"

namespace gridtrust::sim {
namespace {

grid::GridSystem three_rd_grid(std::uint64_t seed = 5) {
  Rng rng(seed);
  grid::RandomGridParams params;
  params.machines = 6;
  params.min_resource_domains = 3;
  params.max_resource_domains = 3;
  params.min_client_domains = 2;
  params.max_client_domains = 2;
  return grid::make_random_grid(params, rng);
}

std::vector<DomainBehavior> rd_conduct() {
  return {{5.6, 0.3}, {3.4, 0.3}, {1.6, 0.3}};
}

std::vector<DomainBehavior> cd_conduct() { return {{5.0, 0.3}, {5.0, 0.3}}; }

ClosedLoopConfig small_config(bool adaptive) {
  ClosedLoopConfig config;
  config.rounds = 8;
  config.tasks_per_round = 30;
  config.adaptive = adaptive;
  config.initial_level = trust::TrustLevel::kE;
  return config;
}

TEST(ClosedLoop, RunsAllRoundsAndCountsTransactions) {
  const grid::GridSystem grid = three_rd_grid();
  const ClosedLoopResult result = run_closed_loop(
      grid, rd_conduct(), cd_conduct(), small_config(true), Rng(1));
  ASSERT_EQ(result.rounds.size(), 8u);
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    EXPECT_EQ(result.rounds[i].round, i);
    EXPECT_GT(result.rounds[i].makespan, 0.0);
    EXPECT_GE(result.rounds[i].mean_chosen_tc, 0.0);
  }
  // Every request generates one client-side and one resource-side
  // transaction per activity; activities are 1-4 per request.
  EXPECT_GE(result.transactions, 2u * 8u * 30u);
  EXPECT_LE(result.transactions, 8u * 8u * 30u);
}

TEST(ClosedLoop, FrozenArmNeverTouchesTheTable) {
  const grid::GridSystem grid = three_rd_grid();
  const ClosedLoopResult result = run_closed_loop(
      grid, rd_conduct(), cd_conduct(), small_config(false), Rng(1));
  EXPECT_EQ(result.transactions, 0u);
  for (const RoundMetrics& round : result.rounds) {
    EXPECT_EQ(round.table_updates, 0u);
    // With an all-E table and no learning, chosen TC derives purely from
    // RTL - E gaps.
  }
  for (std::size_t rd = 0; rd < 3; ++rd) {
    EXPECT_EQ(result.final_table.get(0, rd, 0), trust::TrustLevel::kE);
  }
}

TEST(ClosedLoop, LearnsTheConductOrdering) {
  const grid::GridSystem grid = three_rd_grid();
  ClosedLoopConfig config = small_config(true);
  config.rounds = 10;
  const ClosedLoopResult result =
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(2));
  const int learned0 = trust::to_numeric(result.final_table.get(0, 0, 0));
  const int learned1 = trust::to_numeric(result.final_table.get(0, 1, 0));
  const int learned2 = trust::to_numeric(result.final_table.get(0, 2, 0));
  EXPECT_GT(learned0, learned1);
  EXPECT_GT(learned1, learned2);
  EXPECT_GE(learned0, 5);  // exemplary stays E
  EXPECT_LE(learned2, 2);  // hostile drops to A/B
}

TEST(ClosedLoop, AdaptationReducesResidualExposure) {
  const grid::GridSystem grid = three_rd_grid();
  ClosedLoopConfig config = small_config(true);
  config.rounds = 10;
  const ClosedLoopResult adaptive =
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(3));
  config.adaptive = false;
  const ClosedLoopResult frozen =
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(3));
  // Identical first round (the table has not been refreshed yet).
  EXPECT_NEAR(adaptive.rounds[0].mean_residual_exposure,
              frozen.rounds[0].mean_residual_exposure, 1e-9);
  // From the back half of the run, adaptive residual exposure must sit far
  // below frozen.
  double adaptive_tail = 0.0;
  double frozen_tail = 0.0;
  for (std::size_t i = 5; i < 10; ++i) {
    adaptive_tail += adaptive.rounds[i].mean_residual_exposure;
    frozen_tail += frozen.rounds[i].mean_residual_exposure;
  }
  EXPECT_LT(adaptive_tail, 0.4 * frozen_tail);
}

TEST(ClosedLoop, ResidualExposureIsNonNegative) {
  const grid::GridSystem grid = three_rd_grid();
  const ClosedLoopResult result = run_closed_loop(
      grid, rd_conduct(), cd_conduct(), small_config(true), Rng(4));
  for (const RoundMetrics& round : result.rounds) {
    EXPECT_GE(round.mean_residual_exposure, 0.0);
    EXPECT_GE(round.misplaced_sensitive_fraction, 0.0);
    EXPECT_LE(round.misplaced_sensitive_fraction, 1.0);
  }
}

TEST(ClosedLoop, DeterministicForSeed) {
  const grid::GridSystem grid = three_rd_grid();
  const ClosedLoopResult a = run_closed_loop(
      grid, rd_conduct(), cd_conduct(), small_config(true), Rng(9));
  const ClosedLoopResult b = run_closed_loop(
      grid, rd_conduct(), cd_conduct(), small_config(true), Rng(9));
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].makespan, b.rounds[i].makespan);
    EXPECT_EQ(a.rounds[i].mean_residual_exposure,
              b.rounds[i].mean_residual_exposure);
  }
}

TEST(ClosedLoop, BatchModeWorksInTheLoop) {
  const grid::GridSystem grid = three_rd_grid();
  ClosedLoopConfig config = small_config(true);
  config.rms.mode = SchedulingMode::kBatch;
  config.rms.heuristic = "sufferage";
  const ClosedLoopResult result =
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(5));
  EXPECT_EQ(result.rounds.size(), config.rounds);
  EXPECT_GT(result.transactions, 0u);
}

TEST(ClosedLoop, PerActivityConductIsLearnedPerToa) {
  // One resource domain is excellent at activity 0 but hostile at activity
  // 1; the per-ToA trust table must learn the difference.
  const grid::GridSystem grid = three_rd_grid();
  std::vector<DomainBehavior> rds = rd_conduct();
  rds[0].mean = 5.5;
  rds[0].sigma = 0.2;
  rds[0].activity_mean[1] = 1.4;  // hostile for ToA 1 only
  ClosedLoopConfig config = small_config(true);
  config.rounds = 12;
  config.requests.min_activities = 1;
  config.requests.max_activities = 2;
  const ClosedLoopResult result =
      run_closed_loop(grid, rds, cd_conduct(), config, Rng(6));
  const int level_act0 = trust::to_numeric(result.final_table.get(0, 0, 0));
  const int level_act1 = trust::to_numeric(result.final_table.get(0, 0, 1));
  EXPECT_GT(level_act0, level_act1);
  EXPECT_LE(level_act1, 2);
}

TEST(DomainBehavior, WorstMeanAndOverrides) {
  DomainBehavior behavior;
  behavior.mean = 5.0;
  behavior.activity_mean[2] = 1.5;
  EXPECT_EQ(behavior.mean_for(0), 5.0);
  EXPECT_EQ(behavior.mean_for(2), 1.5);
  EXPECT_EQ(behavior.worst_mean({0, 1}), 5.0);
  EXPECT_EQ(behavior.worst_mean({0, 2}), 1.5);
  EXPECT_THROW(behavior.worst_mean({}), PreconditionError);
}

TEST(ClosedLoop, ReplicaStalenessDelaysButDoesNotPreventAdaptation) {
  const grid::GridSystem grid = three_rd_grid();
  ClosedLoopConfig config = small_config(true);
  config.rounds = 12;
  const ClosedLoopResult fresh =
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(8));
  config.replica_staleness_rounds = 4;
  const ClosedLoopResult stale =
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(8));
  // Early rounds: the stale replica still shows the optimistic prior, so
  // uncovered exposure stays high while the fresh reader has adapted.
  double fresh_early = 0.0;
  double stale_early = 0.0;
  for (std::size_t i = 1; i < 4; ++i) {
    fresh_early += fresh.rounds[i].mean_residual_exposure;
    stale_early += stale.rounds[i].mean_residual_exposure;
  }
  EXPECT_LT(fresh_early, stale_early);
  // Late rounds: both have converged.
  EXPECT_LT(stale.rounds.back().mean_residual_exposure, 0.3);
}

TEST(ClosedLoop, CompromiseSpikesExposureAndRecovers) {
  const grid::GridSystem grid = three_rd_grid();
  std::vector<DomainBehavior> rds = {{5.6, 0.3}, {4.5, 0.3}, {4.5, 0.3}};
  ClosedLoopConfig config = small_config(true);
  config.rounds = 14;
  config.tasks_per_round = 50;
  config.engine.learning_rate = 0.5;
  config.conduct_changes.push_back({6, 0, 1.4});
  const ClosedLoopResult run =
      run_closed_loop(grid, rds, cd_conduct(), config, Rng(11));
  // Pre-compromise steady state is near zero; the compromise round spikes;
  // the tail recovers as the agents re-learn.
  const double before = run.rounds[5].mean_residual_exposure;
  const double spike = run.rounds[6].mean_residual_exposure;
  const double after = run.rounds[13].mean_residual_exposure;
  EXPECT_GT(spike, before + 0.3);
  EXPECT_LT(after, spike * 0.5);
  // The learned table reflects the compromise.
  EXPECT_LE(trust::to_numeric(run.final_table.get(0, 0, 0)), 2);
}

TEST(ClosedLoop, ConductChangeValidation) {
  const grid::GridSystem grid = three_rd_grid();
  ClosedLoopConfig config = small_config(true);
  config.conduct_changes.push_back({2, 9, 3.0});  // unknown RD
  EXPECT_THROW(
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(1)),
      PreconditionError);
  config = small_config(true);
  config.conduct_changes.push_back({99, 0, 3.0});  // past the last round
  EXPECT_THROW(
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(1)),
      PreconditionError);
  config = small_config(true);
  config.conduct_changes.push_back({2, 0, 9.0});  // off the trust scale
  EXPECT_THROW(
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(1)),
      PreconditionError);
}

TEST(Experiment, DrawInstanceIsSelfConsistent) {
  Scenario scenario;
  scenario.tasks = 15;
  Rng rng(5);
  const Instance instance =
      draw_instance(scenario, sched::trust_aware_policy(), rng);
  EXPECT_EQ(instance.requests.size(), 15u);
  EXPECT_EQ(instance.problem.num_requests(), 15u);
  EXPECT_EQ(instance.problem.num_machines(), instance.grid.machines().size());
  EXPECT_EQ(instance.table.client_domains(),
            instance.grid.client_domains().size());
  for (std::size_t r = 0; r < 15; ++r) {
    EXPECT_EQ(instance.problem.arrival_time(r),
              instance.requests[r].arrival_time);
  }
}

TEST(ClosedLoop, BetaMaintainerAlsoLearnsWithoutCollusion) {
  const grid::GridSystem grid = three_rd_grid();
  ClosedLoopConfig config = small_config(true);
  config.rounds = 10;
  config.maintainer = ClosedLoopConfig::TableMaintainer::kBetaPooled;
  const ClosedLoopResult result =
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(12));
  // The pooled table still learns the conduct ordering honestly.
  EXPECT_GT(trust::to_numeric(result.final_table.get(0, 0, 0)),
            trust::to_numeric(result.final_table.get(0, 2, 0)));
  EXPECT_LT(result.rounds.back().mean_residual_exposure, 0.35);
  EXPECT_GT(result.transactions, 0u);
}

TEST(ClosedLoop, CollusionPoisonsBetaButNotGammaForHonestDomains) {
  const grid::GridSystem grid = three_rd_grid(7);
  std::vector<DomainBehavior> rds = {{5.6, 0.3}, {4.4, 0.3}, {1.6, 0.3}};
  const auto run_with = [&](ClosedLoopConfig::TableMaintainer maintainer) {
    ClosedLoopConfig config = small_config(true);
    config.rounds = 12;
    config.tasks_per_round = 60;
    config.maintainer = maintainer;
    config.colluding_pairs.push_back({1, 2});  // cd1 whitewashes rd2
    config.engine.alliance_discount = 0.1;
    return run_closed_loop(grid, rds, cd_conduct(), config, Rng(13));
  };
  const ClosedLoopResult gamma =
      run_with(ClosedLoopConfig::TableMaintainer::kGammaBridge);
  const ClosedLoopResult beta =
      run_with(ClosedLoopConfig::TableMaintainer::kBetaPooled);
  // Honest cd0's view of the hostile rd2: Γ learns the truth; the pooled
  // Beta view is inflated by the colluder.
  EXPECT_LT(trust::to_numeric(gamma.final_table.get(0, 2, 0)),
            trust::to_numeric(beta.final_table.get(0, 2, 0)));
  // Honest-domain exposure in the tail: Γ below Beta.
  double gamma_tail = 0.0;
  double beta_tail = 0.0;
  for (std::size_t i = 8; i < 12; ++i) {
    gamma_tail += gamma.rounds[i].mean_residual_exposure_honest;
    beta_tail += beta.rounds[i].mean_residual_exposure_honest;
  }
  EXPECT_LT(gamma_tail, beta_tail);
}

TEST(ClosedLoop, HonestExposureEqualsTotalWithoutCollusion) {
  const grid::GridSystem grid = three_rd_grid();
  const ClosedLoopResult result = run_closed_loop(
      grid, rd_conduct(), cd_conduct(), small_config(true), Rng(14));
  for (const RoundMetrics& round : result.rounds) {
    EXPECT_NEAR(round.mean_residual_exposure,
                round.mean_residual_exposure_honest, 1e-12);
  }
}

TEST(ClosedLoop, WarmStartSkipsTheLearningPhase) {
  // Run a cold loop, persist its learned table, and warm-start a second
  // deployment from it: the warm run's first rounds must already show the
  // converged exposure the cold run only reaches later.
  const grid::GridSystem grid = three_rd_grid();
  ClosedLoopConfig config = small_config(true);
  config.rounds = 10;
  const ClosedLoopResult cold =
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(21));

  // Round-trip the learned table through the save format.
  const trust::TrustLevelTable restored =
      trust::table_from_string(trust::table_to_string(cold.final_table));

  ClosedLoopConfig warm_config = small_config(true);
  warm_config.rounds = 4;
  warm_config.initial_table = restored;
  const ClosedLoopResult warm =
      run_closed_loop(grid, rd_conduct(), cd_conduct(), warm_config, Rng(22));

  const double cold_first = cold.rounds[0].mean_residual_exposure;
  double warm_early = 0.0;
  for (const RoundMetrics& round : warm.rounds) {
    warm_early = std::max(warm_early, round.mean_residual_exposure);
  }
  EXPECT_LT(warm_early, 0.6 * cold_first);
}

TEST(ClosedLoop, WarmStartValidatesDimensions) {
  const grid::GridSystem grid = three_rd_grid();
  ClosedLoopConfig config = small_config(true);
  config.initial_table = trust::TrustLevelTable(1, 1, 1);
  EXPECT_THROW(
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(1)),
      PreconditionError);
}

TEST(ClosedLoop, CollusionPairValidation) {
  const grid::GridSystem grid = three_rd_grid();
  ClosedLoopConfig config = small_config(true);
  config.colluding_pairs.push_back({9, 0});
  EXPECT_THROW(
      run_closed_loop(grid, rd_conduct(), cd_conduct(), config, Rng(1)),
      PreconditionError);
}

TEST(ClosedLoop, Validation) {
  const grid::GridSystem grid = three_rd_grid();
  EXPECT_THROW(run_closed_loop(grid, {{5.0, 0.1}}, cd_conduct(),
                               small_config(true), Rng(1)),
               PreconditionError);
  EXPECT_THROW(run_closed_loop(grid, rd_conduct(), {{5.0, 0.1}},
                               small_config(true), Rng(1)),
               PreconditionError);
  ClosedLoopConfig bad = small_config(true);
  bad.rounds = 0;
  EXPECT_THROW(
      run_closed_loop(grid, rd_conduct(), cd_conduct(), bad, Rng(1)),
      PreconditionError);
  bad = small_config(true);
  bad.initial_level = trust::TrustLevel::kF;
  EXPECT_THROW(
      run_closed_loop(grid, rd_conduct(), cd_conduct(), bad, Rng(1)),
      PreconditionError);
}

}  // namespace
}  // namespace gridtrust::sim
