// Tests for the scheduling core: ESC models, problems, schedules, and the
// full heuristic suite on hand-worked instances plus property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sched/executor.hpp"
#include "sched/heuristic.hpp"
#include "sched/matrix.hpp"
#include "sched/problem.hpp"
#include "sched/schedule.hpp"
#include "sched/security_model.hpp"

namespace gridtrust::sched {
namespace {

using trust::TrustLevel;

// ---------------------------------------------------------------- matrix

TEST(Matrix, StoresAndChecksBounds) {
  CostMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), 1.5);
  m.at(1, 2) = 7.0;
  EXPECT_EQ(m.get(1, 2), 7.0);
  EXPECT_THROW(m.at(2, 0), PreconditionError);
  EXPECT_THROW(m.at(0, 3), PreconditionError);
  EXPECT_THROW(CostMatrix(0, 3), PreconditionError);
}

// ---------------------------------------------------------------- ESC model

TEST(SecurityModel, PaperEquations) {
  const SecurityCostModel model;  // tc weight 15, blanket 50
  // Trust-aware: ESC = EEC * (TC * 15) / 100.
  EXPECT_NEAR(model.esc(CostModel::kTrustCost, 100.0, 0), 0.0, 1e-12);
  EXPECT_NEAR(model.esc(CostModel::kTrustCost, 100.0, 2), 30.0, 1e-12);
  EXPECT_NEAR(model.esc(CostModel::kTrustCost, 100.0, 6), 90.0, 1e-12);
  // Trust-unaware: ESC = EEC * 50 / 100.
  EXPECT_NEAR(model.esc(CostModel::kBlanket, 100.0, 3), 50.0, 1e-12);
  EXPECT_NEAR(model.esc(CostModel::kNone, 100.0, 6), 0.0, 1e-12);
  // ECC = EEC + ESC.
  EXPECT_NEAR(model.ecc(CostModel::kTrustCost, 100.0, 3), 145.0, 1e-12);
  EXPECT_NEAR(model.ecc(CostModel::kBlanket, 100.0, 3), 150.0, 1e-12);
}

TEST(SecurityModel, AverageTcTimesWeightMatchesPaperNarrative) {
  // "when trust is considered, on average the ESC values are calculated as
  // 45% of the EEC": TC midpoint 3 x weight 15 = 45.
  const SecurityCostModel model;
  EXPECT_NEAR(model.esc(CostModel::kTrustCost, 100.0, 3), 45.0, 1e-12);
}

TEST(SecurityModel, TrustCostClampedDifferenceByDefault) {
  const SecurityCostModel model;
  EXPECT_EQ(model.trust_cost(TrustLevel::kE, TrustLevel::kB), 3);
  EXPECT_EQ(model.trust_cost(TrustLevel::kB, TrustLevel::kE), 0);
  // Default interpretation: F behaves as the plain numeric 6.
  EXPECT_EQ(model.trust_cost(TrustLevel::kF, TrustLevel::kE), 1);
}

TEST(SecurityModel, Table1ForcedFMode) {
  SecurityCostConfig cfg;
  cfg.table1_forced_f = true;
  const SecurityCostModel model(cfg);
  EXPECT_EQ(model.trust_cost(TrustLevel::kF, TrustLevel::kE), 6);
  EXPECT_EQ(model.trust_cost(TrustLevel::kE, TrustLevel::kB), 3);
}

TEST(SecurityModel, CustomWeights) {
  SecurityCostConfig cfg;
  cfg.tc_weight_pct = 10.0;
  cfg.blanket_pct = 80.0;
  const SecurityCostModel model(cfg);
  EXPECT_NEAR(model.esc(CostModel::kTrustCost, 50.0, 4), 20.0, 1e-12);
  EXPECT_NEAR(model.esc(CostModel::kBlanket, 50.0, 4), 40.0, 1e-12);
}

TEST(SecurityModel, Validation) {
  SecurityCostConfig bad;
  bad.tc_weight_pct = -1;
  EXPECT_THROW(SecurityCostModel{bad}, PreconditionError);
  const SecurityCostModel model;
  EXPECT_THROW(model.esc(CostModel::kTrustCost, -1.0, 0), PreconditionError);
  EXPECT_THROW(model.esc(CostModel::kTrustCost, 1.0, 7), PreconditionError);
}

TEST(Policies, FactoryShapes) {
  EXPECT_EQ(trust_aware_policy().decision, CostModel::kTrustCost);
  EXPECT_EQ(trust_aware_policy().actual, CostModel::kTrustCost);
  EXPECT_EQ(trust_unaware_policy().decision, CostModel::kNone);
  EXPECT_EQ(trust_unaware_policy().actual, CostModel::kBlanket);
  EXPECT_EQ(unaware_placement_tc_priced_policy().actual,
            CostModel::kTrustCost);
  EXPECT_EQ(aware_placement_blanket_priced_policy().decision,
            CostModel::kBlanket);
}

// ---------------------------------------------------------------- problem

SchedulingProblem tiny_problem(SchedulingPolicy policy,
                               std::vector<double> arrivals = {}) {
  CostMatrix eec(3, 2);
  const double vals[3][2] = {{3, 4}, {2, 5}, {4, 1}};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t m = 0; m < 2; ++m) eec.at(r, m) = vals[r][m];
  }
  TrustCostMatrix tc(3, 2, 0);
  return SchedulingProblem(std::move(eec), std::move(tc), std::move(policy),
                           SecurityCostModel{}, std::move(arrivals));
}

TEST(Problem, DecisionAndActualCostsFollowPolicy) {
  const SchedulingProblem aware = tiny_problem(trust_aware_policy());
  EXPECT_EQ(aware.decision_cost(0, 0), 3.0);  // tc = 0 -> pure EEC
  EXPECT_EQ(aware.actual_cost(0, 0), 3.0);
  const SchedulingProblem unaware = tiny_problem(trust_unaware_policy());
  EXPECT_EQ(unaware.decision_cost(0, 0), 3.0);
  EXPECT_EQ(unaware.actual_cost(0, 0), 4.5);  // blanket +50 %
}

TEST(Problem, WithPolicyRebindsCosts) {
  const SchedulingProblem unaware = tiny_problem(trust_unaware_policy());
  const SchedulingProblem aware = unaware.with_policy(trust_aware_policy());
  EXPECT_EQ(aware.actual_cost(1, 0), 2.0);
  EXPECT_EQ(unaware.actual_cost(1, 0), 3.0);
  EXPECT_EQ(aware.num_requests(), 3u);
}

TEST(Problem, ValidatesShapesAndValues) {
  CostMatrix eec(2, 2, 1.0);
  TrustCostMatrix tc_wrong(3, 2, 0);
  EXPECT_THROW(SchedulingProblem(eec, tc_wrong, trust_aware_policy(),
                                 SecurityCostModel{}),
               PreconditionError);
  TrustCostMatrix tc_bad(2, 2, 9);
  EXPECT_THROW(SchedulingProblem(eec, tc_bad, trust_aware_policy(),
                                 SecurityCostModel{}),
               PreconditionError);
  TrustCostMatrix tc(2, 2, 0);
  EXPECT_THROW(SchedulingProblem(eec, tc, trust_aware_policy(),
                                 SecurityCostModel{}, {1.0}),
               PreconditionError);  // arrivals don't cover requests
}

TEST(Problem, ArrivalDefaultsToZero) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  EXPECT_EQ(p.arrival_time(2), 0.0);
  EXPECT_THROW(p.arrival_time(3), PreconditionError);
  const SchedulingProblem q =
      tiny_problem(trust_aware_policy(), {0.0, 1.5, 2.5});
  EXPECT_EQ(q.arrival_time(1), 1.5);
}

// ------------------------------------------------------- compute_trust_costs

TEST(TrustCosts, CompositeOtlAndEffectiveRtl) {
  grid::GridSystemBuilder builder(grid::ActivityCatalog::standard());
  const auto gd0 = builder.add_grid_domain("gd0");
  const auto gd1 = builder.add_grid_domain("gd1");
  builder.add_machine(gd0, "m0");
  builder.add_machine(gd1, "m1");
  const grid::GridSystem g = builder.build();

  trust::TrustLevelTable table(2, 2, 8);
  // CD 0 vs RD 0: activity 0 at E, activity 1 at B -> composite OTL = B.
  table.set(0, 0, 0, TrustLevel::kE);
  table.set(0, 0, 1, TrustLevel::kB);
  // CD 0 vs RD 1: both activities at D.
  table.set(0, 1, 0, TrustLevel::kD);
  table.set(0, 1, 1, TrustLevel::kD);

  grid::Request req;
  req.id = 0;
  req.client_domain = 0;
  req.activities = {0, 1};
  req.client_rtl = TrustLevel::kC;
  req.resource_rtl = TrustLevel::kE;  // effective RTL = E (5)

  const SecurityCostModel model;
  const TrustCostMatrix tc = compute_trust_costs(g, {req}, table, model);
  EXPECT_EQ(tc.at(0, 0), 3);  // E(5) - B(2)
  EXPECT_EQ(tc.at(0, 1), 1);  // E(5) - D(4)
}

TEST(TrustCosts, UnsupportedActivityGetsPenalty) {
  grid::GridSystemBuilder builder(grid::ActivityCatalog::standard());
  const auto gd0 = builder.add_grid_domain("gd0");
  builder.add_machine(gd0, "m0");
  builder.set_supported_activities(gd0, {0});  // only activity 0
  const grid::GridSystem g = builder.build();
  trust::TrustLevelTable table(1, 1, 8);
  table.set(0, 0, 0, TrustLevel::kE);
  table.set(0, 0, 1, TrustLevel::kE);

  grid::Request req;
  req.client_domain = 0;
  req.activities = {0, 1};  // activity 1 unsupported
  req.client_rtl = TrustLevel::kA;
  req.resource_rtl = TrustLevel::kA;
  const TrustCostMatrix tc =
      compute_trust_costs(g, {req}, table, SecurityCostModel{});
  EXPECT_EQ(tc.at(0, 0), trust::kMaxTrustCost);
}

TEST(TrustCosts, Validation) {
  grid::GridSystemBuilder builder(grid::ActivityCatalog::standard());
  builder.add_machine(builder.add_grid_domain("gd"), "m");
  const grid::GridSystem g = builder.build();
  trust::TrustLevelTable table(1, 1, 8);
  EXPECT_THROW(compute_trust_costs(g, {}, table, SecurityCostModel{}),
               PreconditionError);
  grid::Request no_acts;
  no_acts.client_domain = 0;
  EXPECT_THROW(compute_trust_costs(g, {no_acts}, table, SecurityCostModel{}),
               PreconditionError);
  trust::TrustLevelTable wrong(2, 1, 8);
  grid::Request ok;
  ok.client_domain = 0;
  ok.activities = {0};
  EXPECT_THROW(compute_trust_costs(g, {ok}, wrong, SecurityCostModel{}),
               PreconditionError);
}

// ---------------------------------------------------------------- schedule

TEST(Schedule, CommitMathAndMetrics) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  Schedule s = Schedule::for_problem(p);
  commit_assignment(p, 0, 0, 0.0, s);
  EXPECT_EQ(s.machine_of[0], 0u);
  EXPECT_EQ(s.start[0], 0.0);
  EXPECT_EQ(s.completion[0], 3.0);
  EXPECT_EQ(s.machine_available[0], 3.0);
  EXPECT_FALSE(s.complete());
  commit_assignment(p, 1, 0, 0.0, s);
  commit_assignment(p, 2, 1, 0.0, s);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.makespan(), 5.0);
  // busy: m0 = 5, m1 = 1 -> utilization = 6 / (2*5) = 60 %.
  EXPECT_NEAR(s.utilization_pct(), 60.0, 1e-9);
}

TEST(Schedule, ReadyAndArrivalFloorsCreateIdleGaps) {
  const SchedulingProblem p =
      tiny_problem(trust_aware_policy(), {0.0, 10.0, 0.0});
  Schedule s = Schedule::for_problem(p);
  commit_assignment(p, 0, 0, 0.0, s);  // completes at 3
  commit_assignment(p, 1, 0, 0.0, s);  // arrival 10 floors the start
  EXPECT_EQ(s.start[1], 10.0);
  EXPECT_EQ(s.completion[1], 12.0);
  EXPECT_EQ(s.machine_available[0], 12.0);
  EXPECT_EQ(s.machine_busy[0], 5.0);  // idle gap not counted as busy
  // Explicit ready floor (e.g. batch formation time).
  commit_assignment(p, 2, 1, 20.0, s);
  EXPECT_EQ(s.start[2], 20.0);
}

TEST(Schedule, RejectsDoubleAssignment) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  Schedule s = Schedule::for_problem(p);
  commit_assignment(p, 0, 0, 0.0, s);
  EXPECT_THROW(commit_assignment(p, 0, 1, 0.0, s), PreconditionError);
}

TEST(Schedule, MeanFlowTime) {
  const SchedulingProblem p =
      tiny_problem(trust_aware_policy(), {0.0, 1.0, 2.0});
  Schedule s = Schedule::for_problem(p);
  commit_assignment(p, 0, 0, 0.0, s);  // completion 3, flow 3
  commit_assignment(p, 1, 1, 0.0, s);  // start 1, completion 6, flow 5
  commit_assignment(p, 2, 0, 0.0, s);  // start 3, completion 7, flow 5
  EXPECT_NEAR(s.mean_flow_time(p), (3.0 + 5.0 + 5.0) / 3.0, 1e-12);
}

// ---------------------------------------------------------------- heuristics

TEST(Immediate, MctHandWorkedInstance) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  auto mct = make_mct();
  const Schedule s = run_immediate(p, *mct);
  EXPECT_EQ(s.machine_of[0], 0u);  // 3 < 4
  EXPECT_EQ(s.machine_of[1], 0u);  // 5 == 5, lowest index wins
  EXPECT_EQ(s.machine_of[2], 1u);  // 9 vs 1
  EXPECT_EQ(s.makespan(), 5.0);
}

TEST(Immediate, MetIgnoresAvailability) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  auto met = make_met();
  const Schedule s = run_immediate(p, *met);
  EXPECT_EQ(s.machine_of[0], 0u);
  EXPECT_EQ(s.machine_of[1], 0u);
  EXPECT_EQ(s.machine_of[2], 1u);
}

TEST(Immediate, OlbBalancesAvailabilityOnly) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  auto olb = make_olb();
  const Schedule s = run_immediate(p, *olb);
  EXPECT_EQ(s.machine_of[0], 0u);  // both idle, lowest index
  EXPECT_EQ(s.machine_of[1], 1u);  // m0 busy until 3
  EXPECT_EQ(s.machine_of[2], 0u);  // avail (3, 5)
}

TEST(Immediate, KpbFullPercentEqualsMct) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  auto kpb = make_kpb(100.0);
  auto mct = make_mct();
  const Schedule a = run_immediate(p, *kpb);
  const Schedule b = run_immediate(p, *mct);
  EXPECT_EQ(a.machine_of, b.machine_of);
}

TEST(Immediate, KpbSmallPercentRestrictsToBestCostMachine) {
  // With k so small the subset is a single machine, KPB degenerates to MET.
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  auto kpb = make_kpb(1.0);
  auto met = make_met();
  const Schedule a = run_immediate(p, *kpb);
  const Schedule b = run_immediate(p, *met);
  EXPECT_EQ(a.machine_of, b.machine_of);
  EXPECT_THROW(make_kpb(0.0), PreconditionError);
  EXPECT_THROW(make_kpb(101.0), PreconditionError);
}

TEST(Immediate, SwitchingStartsLikeMctAndCanSwitchToMet) {
  // With high = 0.5 and an initially balanced (empty) system, the index is
  // 1.0 so the first decision already uses MET.
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  auto sa = make_switching(0.0, 0.5);
  auto met = make_met();
  Schedule s = Schedule::for_problem(p);
  sa->reset();
  const std::size_t pick = sa->select_machine(p, 0, 0.0, s);
  Schedule s2 = Schedule::for_problem(p);
  EXPECT_EQ(pick, met->select_machine(p, 0, 0.0, s2));
  EXPECT_THROW(make_switching(0.9, 0.5), PreconditionError);
}

TEST(Batch, MinMinHandWorkedInstance) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  auto h = make_min_min();
  const Schedule s = run_batch_all(p, *h);
  // Order of commitment: r2 -> m1 (1), r1 -> m0 (2), r0 -> m0 (5).
  EXPECT_EQ(s.machine_of[2], 1u);
  EXPECT_EQ(s.machine_of[1], 0u);
  EXPECT_EQ(s.machine_of[0], 0u);
  EXPECT_EQ(s.makespan(), 5.0);
}

TEST(Batch, MaxMinHandWorkedInstance) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  auto h = make_max_min();
  const Schedule s = run_batch_all(p, *h);
  // r0 commits first (largest best completion 3).
  EXPECT_EQ(s.machine_of[0], 0u);
  EXPECT_EQ(s.machine_of[1], 0u);
  EXPECT_EQ(s.machine_of[2], 1u);
  EXPECT_EQ(s.makespan(), 5.0);
}

TEST(Batch, SufferageHandWorkedInstance) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  auto h = make_sufferage();
  const Schedule s = run_batch_all(p, *h);
  // Iteration 1: r1 takes m0 from r0 (sufferage 3 > 1); r2 takes m1.
  // Iteration 2: r0 -> m0.
  EXPECT_EQ(s.machine_of[1], 0u);
  EXPECT_EQ(s.machine_of[2], 1u);
  EXPECT_EQ(s.machine_of[0], 0u);
  EXPECT_EQ(s.completion[1], 2.0);
  EXPECT_EQ(s.completion[0], 5.0);
}

TEST(Batch, DuplexPicksTheBetterOfMinMinAndMaxMin) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  auto duplex = make_duplex();
  auto minmin = make_min_min();
  auto maxmin = make_max_min();
  const double d = run_batch_all(p, *duplex).makespan();
  const double mn = run_batch_all(p, *minmin).makespan();
  const double mx = run_batch_all(p, *maxmin).makespan();
  EXPECT_EQ(d, std::min(mn, mx));
}

SchedulingProblem random_problem(std::uint64_t seed, SchedulingPolicy policy,
                                 std::size_t n = 40, std::size_t m = 6) {
  Rng rng(seed);
  CostMatrix eec(n, m);
  TrustCostMatrix tc(n, m);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      eec.at(r, c) = rng.uniform(1.0, 100.0);
      tc.at(r, c) = static_cast<int>(rng.uniform_int(0, 6));
    }
  }
  return SchedulingProblem(std::move(eec), std::move(tc), std::move(policy),
                           SecurityCostModel{});
}

TEST(Batch, GeneticNeverLosesToItsMinMinSeed) {
  // The GA population is seeded with the Min-min mapping and selection is
  // elitist, so its makespan can never exceed Min-min's.
  for (std::uint64_t seed = 30; seed < 40; ++seed) {
    const SchedulingProblem p = random_problem(seed, trust_aware_policy());
    auto ga = make_genetic();
    auto minmin = make_min_min();
    const double ga_mk = run_batch_all(p, *ga).makespan();
    const double mm_mk = run_batch_all(p, *minmin).makespan();
    EXPECT_LE(ga_mk, mm_mk + 1e-9) << "seed " << seed;
  }
}

TEST(Batch, GeneticUsuallyImprovesOnMinMin) {
  // Not a guarantee per instance, but across a sweep the GA must find
  // strictly better schedules most of the time.
  std::size_t improved = 0;
  for (std::uint64_t seed = 60; seed < 75; ++seed) {
    const SchedulingProblem p = random_problem(seed, trust_aware_policy());
    auto ga = make_genetic();
    auto minmin = make_min_min();
    if (run_batch_all(p, *ga).makespan() <
        run_batch_all(p, *minmin).makespan() - 1e-9) {
      ++improved;
    }
  }
  EXPECT_GE(improved, 10u);
}

TEST(Batch, LocalSearchNeverLosesToTheMinMinSeed) {
  // Both SA and Tabu keep a best-so-far initialized from Min-min.
  for (std::uint64_t seed = 45; seed < 50; ++seed) {
    const SchedulingProblem p = random_problem(seed, trust_aware_policy());
    auto minmin = make_min_min();
    const double mm = run_batch_all(p, *minmin).makespan();
    auto sa = make_annealing();
    auto tabu = make_tabu();
    EXPECT_LE(run_batch_all(p, *sa).makespan(), mm + 1e-9) << seed;
    EXPECT_LE(run_batch_all(p, *tabu).makespan(), mm + 1e-9) << seed;
  }
}

TEST(Batch, LocalSearchUsuallyImprovesOnMinMin) {
  std::size_t sa_improved = 0;
  std::size_t tabu_improved = 0;
  for (std::uint64_t seed = 60; seed < 72; ++seed) {
    const SchedulingProblem p = random_problem(seed, trust_aware_policy());
    auto minmin = make_min_min();
    const double mm = run_batch_all(p, *minmin).makespan();
    auto sa = make_annealing();
    auto tabu = make_tabu();
    if (run_batch_all(p, *sa).makespan() < mm - 1e-9) ++sa_improved;
    if (run_batch_all(p, *tabu).makespan() < mm - 1e-9) ++tabu_improved;
  }
  EXPECT_GE(sa_improved, 8u);
  EXPECT_GE(tabu_improved, 8u);
}

TEST(Batch, GeneticIsDeterministicPerBatch) {
  const SchedulingProblem p = random_problem(91, trust_aware_policy());
  auto ga1 = make_genetic();
  auto ga2 = make_genetic();
  EXPECT_EQ(run_batch_all(p, *ga1).machine_of,
            run_batch_all(p, *ga2).machine_of);
}

TEST(Batch, RejectsAlreadyAssignedRequests) {
  const SchedulingProblem p = tiny_problem(trust_aware_policy());
  auto h = make_min_min();
  Schedule s = Schedule::for_problem(p);
  commit_assignment(p, 0, 0, 0.0, s);
  EXPECT_THROW(h->map_batch(p, {0, 1}, 0.0, s), PreconditionError);
}

TEST(Registry, FactoriesAndNames) {
  for (const std::string& name : immediate_heuristic_names()) {
    EXPECT_EQ(make_immediate(name)->name(), name);
  }
  for (const std::string& name : batch_heuristic_names()) {
    EXPECT_EQ(make_batch(name)->name(), name);
  }
  EXPECT_THROW(make_immediate("nope"), PreconditionError);
  EXPECT_THROW(make_batch("nope"), PreconditionError);
}

// ------------------------------------------------------------- properties


class HeuristicProperties
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(HeuristicProperties, SchedulesAreCompleteAndConsistent) {
  const auto& [name, seed] = GetParam();
  const SchedulingProblem p = random_problem(seed, trust_aware_policy());

  const auto run = [&](const SchedulingProblem& prob) {
    const auto imm = immediate_heuristic_names();
    if (std::find(imm.begin(), imm.end(), name) != imm.end()) {
      auto h = make_immediate(name);
      return run_immediate(prob, *h);
    }
    auto h = make_batch(name);
    return run_batch_all(prob, *h);
  };

  const Schedule s = run(p);
  ASSERT_TRUE(s.complete());

  // Makespan bounds: at least the largest single best cost; at most the
  // serial sum of worst costs.
  double lower = 0.0;
  double upper = 0.0;
  for (std::size_t r = 0; r < p.num_requests(); ++r) {
    double best = p.actual_cost(r, 0);
    double worst = best;
    for (std::size_t m = 1; m < p.num_machines(); ++m) {
      best = std::min(best, p.actual_cost(r, m));
      worst = std::max(worst, p.actual_cost(r, m));
    }
    lower = std::max(lower, best);
    upper += worst;
  }
  EXPECT_GE(s.makespan(), lower - 1e-9);
  EXPECT_LE(s.makespan(), upper + 1e-9);
  EXPECT_GT(s.utilization_pct(), 0.0);
  EXPECT_LE(s.utilization_pct(), 100.0 + 1e-9);

  // Per-machine accounting: availability equals the sum of its actual
  // costs (no arrivals, so no idle gaps).
  std::vector<double> busy(p.num_machines(), 0.0);
  for (std::size_t r = 0; r < p.num_requests(); ++r) {
    busy[s.machine_of[r]] += p.actual_cost(r, s.machine_of[r]);
  }
  for (std::size_t m = 0; m < p.num_machines(); ++m) {
    EXPECT_NEAR(s.machine_available[m], busy[m], 1e-6);
    EXPECT_NEAR(s.machine_busy[m], busy[m], 1e-6);
  }

  // Determinism: a second run reproduces the mapping exactly.
  const Schedule again = run(p);
  EXPECT_EQ(s.machine_of, again.machine_of);
}

INSTANTIATE_TEST_SUITE_P(
    AllHeuristics, HeuristicProperties,
    ::testing::Combine(::testing::Values("olb", "met", "mct", "kpb",
                                         "switching", "min-min", "max-min",
                                         "sufferage", "duplex",
                                         "genetic", "annealing", "tabu"),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::uint64_t>>&
           param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(param_info.param));
    });

TEST_P(HeuristicProperties, MachineTimelinesNeverOverlap) {
  const auto& [name, seed] = GetParam();
  const SchedulingProblem p = random_problem(seed + 50, trust_aware_policy());
  const auto imm = immediate_heuristic_names();
  Schedule s;
  if (std::find(imm.begin(), imm.end(), name) != imm.end()) {
    auto h = make_immediate(name);
    s = run_immediate(p, *h);
  } else {
    auto h = make_batch(name);
    s = run_batch_all(p, *h);
  }
  // Group intervals per machine, sort by start, assert no overlap.
  std::vector<std::vector<std::pair<double, double>>> spans(p.num_machines());
  for (std::size_t r = 0; r < p.num_requests(); ++r) {
    spans[s.machine_of[r]].push_back({s.start[r], s.completion[r]});
  }
  for (auto& machine_spans : spans) {
    std::sort(machine_spans.begin(), machine_spans.end());
    for (std::size_t i = 1; i < machine_spans.size(); ++i) {
      EXPECT_GE(machine_spans[i].first, machine_spans[i - 1].second - 1e-9);
    }
  }
}

class PolicyProperties
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PolicyProperties, CostViewsObeyTheirModels) {
  const auto& [which, seed] = GetParam();
  const std::vector<SchedulingPolicy> policies = {
      trust_aware_policy(), trust_unaware_policy(),
      unaware_placement_tc_priced_policy(),
      aware_placement_blanket_priced_policy()};
  const SchedulingPolicy policy = policies[static_cast<std::size_t>(which)];
  const SchedulingProblem p = random_problem(seed, policy, 25, 5);
  const SecurityCostModel model;
  for (std::size_t r = 0; r < p.num_requests(); ++r) {
    for (std::size_t m = 0; m < p.num_machines(); ++m) {
      const double eec = p.eec(r, m);
      const int tc = p.trust_cost(r, m);
      EXPECT_NEAR(p.decision_cost(r, m), model.ecc(policy.decision, eec, tc),
                  1e-12);
      EXPECT_NEAR(p.actual_cost(r, m), model.ecc(policy.actual, eec, tc),
                  1e-12);
      // Actual cost always includes the full EEC.
      EXPECT_GE(p.actual_cost(r, m), eec - 1e-12);
      // Decision cost never exceeds the blanket-priced ceiling.
      EXPECT_LE(p.decision_cost(r, m),
                eec * (1.0 + 0.15 * 6.0) + 1e-9);
    }
  }
}

std::string policy_case_name(
    const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& param_info) {
  static const char* kNames[] = {"aware", "unaware", "mid_tc", "mid_blanket"};
  return std::string(kNames[std::get<0>(param_info.param)]) + "_seed" +
         std::to_string(std::get<1>(param_info.param));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperties,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(11u, 12u)),
                         policy_case_name);

TEST(Properties, BlanketActualScalesMakespanByExactlyHalf) {
  // Under the trust-unaware policy the mapping minimizes bare EEC but pays
  // 1.5x; the realized makespan must be exactly 1.5x the EEC makespan of
  // the same mapping.
  const SchedulingProblem unaware =
      random_problem(77, trust_unaware_policy());
  auto mct = make_mct();
  const Schedule s = run_immediate(unaware, *mct);
  double eec_makespan = 0.0;
  std::vector<double> load(unaware.num_machines(), 0.0);
  for (std::size_t r = 0; r < unaware.num_requests(); ++r) {
    load[s.machine_of[r]] += unaware.eec(r, s.machine_of[r]);
  }
  for (const double l : load) eec_makespan = std::max(eec_makespan, l);
  EXPECT_NEAR(s.makespan(), 1.5 * eec_makespan, 1e-6);
}

TEST(Properties, ZeroTrustCostAwareBeatsUnawareAcrossSeeds) {
  // With every trust cost zero the aware policy pays no security at all
  // while the unaware one pays the blanket 50 %; trust-aware makespans must
  // come out well below unaware ones on every instance of the sweep.
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    Rng rng(seed);
    CostMatrix eec(20, 4);
    for (std::size_t r = 0; r < 20; ++r) {
      for (std::size_t m = 0; m < 4; ++m) eec.at(r, m) = rng.uniform(1, 50);
    }
    TrustCostMatrix tc(20, 4, 0);
    const SchedulingProblem aware(eec, tc, trust_aware_policy(),
                                  SecurityCostModel{});
    const SchedulingProblem unaware(eec, tc, trust_unaware_policy(),
                                    SecurityCostModel{});
    auto mct_a = make_mct();
    auto mct_b = make_mct();
    const Schedule sa = run_immediate(aware, *mct_a);
    const Schedule sb = run_immediate(unaware, *mct_b);
    EXPECT_LT(sa.makespan(), sb.makespan()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gridtrust::sched
