// Tests for the TrustManager facade (§2.2's "trust management
// architecture" as a deployable component).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "des/simulator.hpp"
#include "trust/manager.hpp"

namespace gridtrust::trust {
namespace {

TrustManagerConfig fast_config() {
  TrustManagerConfig config;
  config.refresh_interval = 10.0;
  config.min_transactions = 2;
  return config;
}

TEST(TrustManager, MaintainRefreshesTheTable) {
  TrustManager manager(fast_config(), 1, 1, 1);
  manager.observe_client_side(0, 0, 0, 1.0, 5.0);
  manager.observe_resource_side(0, 0, 0, 2.0, 5.0);
  EXPECT_EQ(manager.table().get(0, 0, 0), TrustLevel::kA);  // untouched yet
  EXPECT_GT(manager.maintain(3.0), 0u);
  EXPECT_EQ(manager.table().get(0, 0, 0), TrustLevel::kE);
  EXPECT_EQ(manager.stats().ticks, 1u);
  EXPECT_EQ(manager.stats().table_updates, 1u);
}

TEST(TrustManager, AttachedTicksRunPeriodically) {
  TrustManager manager(fast_config(), 1, 1, 1);
  des::Simulator sim;
  manager.attach(sim);
  // Feed observations at t=1, 2 via simulator events.
  sim.schedule_at(1.0, [&] { manager.observe_client_side(0, 0, 0, 1.0, 5.0); });
  sim.schedule_at(2.0, [&] {
    manager.observe_resource_side(0, 0, 0, 2.0, 5.0);
  });
  sim.run_until(35.0);
  // Ticks at t = 10, 20, 30.
  EXPECT_EQ(manager.stats().ticks, 3u);
  EXPECT_EQ(manager.table().get(0, 0, 0), TrustLevel::kE);
  // The first tick applied the update; later ticks found nothing new.
  EXPECT_EQ(manager.stats().table_updates, 1u);
}

TEST(TrustManager, PruningDropsStaleRecords) {
  TrustManagerConfig config = fast_config();
  config.prune_horizon = 50.0;
  TrustManager manager(config, 1, 2, 1);
  manager.observe_client_side(0, 0, 0, 1.0, 5.0);    // stale by t=100
  manager.observe_client_side(0, 1, 0, 95.0, 5.0);   // fresh
  manager.maintain(100.0);
  EXPECT_EQ(manager.stats().pruned_records, 1u);
  EXPECT_FALSE(manager.bridge()
                   .engine()
                   .direct_record(manager.bridge().cd_entity(0),
                                  manager.bridge().rd_entity(0), 0)
                   .has_value());
  EXPECT_TRUE(manager.bridge()
                  .engine()
                  .direct_record(manager.bridge().cd_entity(0),
                                 manager.bridge().rd_entity(1), 0)
                  .has_value());
}

TEST(TrustManager, SaveLoadRoundTrip) {
  TrustManager original(fast_config(), 2, 2, 2);
  for (int i = 0; i < 4; ++i) {
    original.observe_client_side(0, 1, 0, i, 5.0);
    original.observe_resource_side(1, 0, 0, i, 5.0);
  }
  original.maintain(10.0);
  std::ostringstream table_out;
  std::ostringstream engine_out;
  original.save(table_out, engine_out);

  TrustManager restored(fast_config(), 2, 2, 2);
  std::istringstream table_in(table_out.str());
  std::istringstream engine_in(engine_out.str());
  restored.load(table_in, engine_in);
  EXPECT_EQ(restored.table().get(0, 1, 0), original.table().get(0, 1, 0));
  EXPECT_EQ(restored.bridge().engine().transaction_count(),
            original.bridge().engine().transaction_count());
  // The restored manager keeps evolving seamlessly.
  restored.observe_client_side(0, 1, 0, 20.0, 1.0);
  restored.observe_client_side(0, 1, 0, 21.0, 1.0);
  restored.maintain(22.0);
  EXPECT_LT(to_numeric(restored.table().get(0, 1, 0)),
            to_numeric(original.table().get(0, 1, 0)));
}

TEST(TrustManager, LoadValidatesDimensions) {
  TrustManager original(fast_config(), 1, 1, 1);
  original.observe_client_side(0, 0, 0, 1.0, 4.0);
  std::ostringstream table_out;
  std::ostringstream engine_out;
  original.save(table_out, engine_out);
  TrustManager wrong(fast_config(), 2, 2, 2);
  std::istringstream table_in(table_out.str());
  std::istringstream engine_in(engine_out.str());
  EXPECT_THROW(wrong.load(table_in, engine_in), PreconditionError);
}

TEST(TrustManager, Validation) {
  TrustManagerConfig bad;
  bad.refresh_interval = 0.0;
  EXPECT_THROW(TrustManager(bad, 1, 1, 1), PreconditionError);
}

}  // namespace
}  // namespace gridtrust::trust
