// Unit and integration tests for the Grid economy subsystem (src/econ):
// configuration validation, the three price models, hand-built market
// clearings under every mechanism (budget/deadline feasibility, rejection
// classification, Vickrey pricing, trust-unaware metering risk), the QoS
// term draws, and the closed-loop market campaign's determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "econ/campaign.hpp"
#include "econ/config.hpp"
#include "econ/market.hpp"
#include "econ/price_model.hpp"
#include "grid/request.hpp"
#include "lab/catalog.hpp"
#include "sched/problem.hpp"
#include "sched/security_model.hpp"
#include "sim/scenario_builder.hpp"

namespace gridtrust::econ {
namespace {

/// A scheduling problem from an explicit EEC table with zero trust costs:
/// under the trust-aware policy decision and actual costs both equal the
/// EEC, so market arithmetic is exact.
sched::SchedulingProblem make_problem(
    const std::vector<std::vector<double>>& eec_rows,
    sched::SchedulingPolicy policy = sched::trust_aware_policy(),
    std::vector<double> arrivals = {}) {
  const std::size_t rows = eec_rows.size();
  const std::size_t cols = eec_rows.front().size();
  sched::CostMatrix eec(rows, cols);
  sched::TrustCostMatrix tc(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t m = 0; m < cols; ++m) {
      eec.at(r, m) = eec_rows[r][m];
      tc.at(r, m) = 0;
    }
  }
  return sched::SchedulingProblem(std::move(eec), std::move(tc), policy,
                                  sched::SecurityCostModel{},
                                  std::move(arrivals));
}

/// `n` requests with the given QoS terms (0 = unconstrained).
std::vector<grid::Request> make_requests(std::size_t n, double deadline = 0.0,
                                         double budget = 0.0,
                                         double valuation = 0.0) {
  std::vector<grid::Request> requests(n);
  for (std::size_t r = 0; r < n; ++r) {
    requests[r].id = r;
    requests[r].deadline = deadline;
    requests[r].budget = budget;
    requests[r].valuation = valuation;
  }
  return requests;
}

// --------------------------------------------------------- configuration

TEST(EconConfig, NamesRoundTrip) {
  for (const std::string& name : pricing_names()) {
    EXPECT_EQ(to_string(pricing_from_string(name)), name);
  }
  for (const std::string& name : mechanism_names()) {
    EXPECT_EQ(to_string(mechanism_from_string(name)), name);
  }
  EXPECT_THROW((void)pricing_from_string("dutch"), PreconditionError);
  EXPECT_THROW((void)mechanism_from_string("english"), PreconditionError);
}

TEST(EconConfig, ValidateChecksRangesOnlyWhenEnabled) {
  EconomyConfig config;
  config.base_rate = -1.0;  // nonsense, but the economy is off
  EXPECT_NO_THROW(config.validate());

  config = EconomyConfig{};
  config.enabled = true;
  EXPECT_NO_THROW(config.validate());

  config.pricing = "dutch";
  EXPECT_THROW(config.validate(), PreconditionError);
  config = EconomyConfig{};
  config.enabled = true;
  config.base_rate = 0.0;
  EXPECT_THROW(config.validate(), PreconditionError);
  config = EconomyConfig{};
  config.enabled = true;
  config.budget_factor_lo = 2.0;
  config.budget_factor_hi = 1.0;
  EXPECT_THROW(config.validate(), PreconditionError);
  config = EconomyConfig{};
  config.enabled = true;
  config.min_price_factor = 5.0;  // above max_price_factor
  EXPECT_THROW(config.validate(), PreconditionError);
}

// ---------------------------------------------------------- price models

TEST(PriceModels, FlatRatesNeverMove) {
  EconomyConfig config;
  auto model = make_price_model(config, {1.0, 2.0});
  EXPECT_EQ(model->name(), "flat");
  RoundSignals signals{{1.0, 0.0}, {6.0, 1.0}};
  model->update_round(signals);
  model->update_round(signals);
  EXPECT_EQ(model->rate(0), 1.0);
  EXPECT_EQ(model->rate(1), 2.0);
  EXPECT_EQ(model->price_index(), 1.0);
}

TEST(PriceModels, CommodityCompoundsAndClamps) {
  EconomyConfig config;
  config.pricing = "commodity";
  config.commodity_elasticity = 0.5;
  config.target_utilization = 0.5;
  config.min_price_factor = 0.25;
  config.max_price_factor = 4.0;
  auto model = make_price_model(config, {2.0, 2.0});
  // Machine 0 runs flat out (+25%/round compounding), machine 1 idles.
  const RoundSignals signals{{1.0, 0.0}, {3.5, 3.5}};
  model->update_round(signals);
  EXPECT_DOUBLE_EQ(model->rate(0), 2.0 * 1.25);
  EXPECT_DOUBLE_EQ(model->rate(1), 2.0 * 0.75);
  model->update_round(signals);
  EXPECT_DOUBLE_EQ(model->rate(0), 2.0 * 1.25 * 1.25);
  // Many more rounds pin both machines at the clamp.
  for (int round = 0; round < 50; ++round) model->update_round(signals);
  EXPECT_DOUBLE_EQ(model->rate(0), 2.0 * config.max_price_factor);
  EXPECT_DOUBLE_EQ(model->rate(1), 2.0 * config.min_price_factor);
}

TEST(PriceModels, TrustPremiumIsLinearAndDoesNotCompound) {
  EconomyConfig config;
  config.pricing = "trust";
  config.trust_premium_pct = 30.0;
  auto model = make_price_model(config, {10.0, 10.0, 10.0});
  const RoundSignals signals{{0.0, 0.0, 0.0}, {6.0, 1.0, 3.5}};
  model->update_round(signals);
  EXPECT_DOUBLE_EQ(model->rate(0), 13.0);  // full premium at level 6
  EXPECT_DOUBLE_EQ(model->rate(1), 7.0);   // full discount at level 1
  EXPECT_DOUBLE_EQ(model->rate(2), 10.0);  // midpoint prices at base
  // Re-applying the same table must not compound the premium.
  model->update_round(signals);
  EXPECT_DOUBLE_EQ(model->rate(0), 13.0);
  // A recovered domain reprices immediately.
  model->update_round(RoundSignals{{0.0, 0.0, 0.0}, {6.0, 6.0, 6.0}});
  EXPECT_DOUBLE_EQ(model->rate(1), 13.0);
}

TEST(PriceModels, DrawBaseRatesIsBoundedAndDeterministic) {
  EconomyConfig config;
  config.base_rate = 2.0;
  config.rate_spread = 0.25;
  Rng a(7);
  Rng b(7);
  const auto rates_a = draw_base_rates(config, 16, a);
  const auto rates_b = draw_base_rates(config, 16, b);
  EXPECT_EQ(rates_a, rates_b);
  for (const double rate : rates_a) {
    EXPECT_GE(rate, 2.0 * 0.75);
    EXPECT_LE(rate, 2.0 * 1.25);
  }
  config.rate_spread = 0.0;
  Rng c(7);
  for (const double rate : draw_base_rates(config, 4, c)) {
    EXPECT_DOUBLE_EQ(rate, 2.0);
  }
}

TEST(PriceModels, ConstructionRejectsBadInputs) {
  EconomyConfig config;
  EXPECT_THROW((void)make_price_model(config, {}), PreconditionError);
  EXPECT_THROW((void)make_price_model(config, {1.0, 0.0}), PreconditionError);
  config.pricing = "dutch";
  EXPECT_THROW((void)make_price_model(config, {1.0}), PreconditionError);
}

// -------------------------------------------------------- market clearing

TEST(Market, ProblemCtorValidatesShapes) {
  const auto base = make_problem({{1.0, 2.0}});
  EXPECT_THROW(MarketProblem(base, make_requests(2), {1.0, 1.0}),
               PreconditionError);
  EXPECT_THROW(MarketProblem(base, make_requests(1), {1.0}),
               PreconditionError);
  EXPECT_THROW(MarketProblem(base, make_requests(1), {1.0, 0.0}),
               PreconditionError);
}

TEST(Market, PostedCostBuysTheCheapestFeasibleMachine) {
  const auto base = make_problem({{4.0, 2.0, 3.0}});
  const auto requests = make_requests(1, 0.0, 0.0, /*valuation=*/10.0);
  const MarketProblem market(base, requests, {1.0, 1.0, 1.0});
  const MarketResult result = run_market(market, MechanismKind::kPostedCost);
  ASSERT_TRUE(result.outcomes[0].served);
  EXPECT_EQ(result.outcomes[0].machine, 1u);
  EXPECT_DOUBLE_EQ(result.outcomes[0].spend, 2.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion, 2.0);
  EXPECT_EQ(result.counters.served, 1u);
  EXPECT_DOUBLE_EQ(result.total_spend, 2.0);
  EXPECT_DOUBLE_EQ(result.welfare, 8.0);
}

TEST(Market, PostedTimeBuysTheEarliestCompletion) {
  // Machine 1 is faster but 10x more expensive.
  const auto base = make_problem({{3.0, 2.0}});
  const auto requests = make_requests(1);
  const MarketProblem market(base, requests, {1.0, 10.0});
  const auto by_time = run_market(market, MechanismKind::kPostedTime);
  EXPECT_EQ(by_time.outcomes[0].machine, 1u);
  EXPECT_DOUBLE_EQ(by_time.outcomes[0].spend, 20.0);
  const auto by_cost = run_market(market, MechanismKind::kPostedCost);
  EXPECT_EQ(by_cost.outcomes[0].machine, 0u);
  EXPECT_DOUBLE_EQ(by_cost.outcomes[0].spend, 3.0);
}

TEST(Market, ClassifiesRejectionsAsBudgetOrDeadlineBound) {
  const auto base = make_problem({{10.0, 20.0}});
  // Budget admits no machine (cheapest decision price is 10).
  {
    const MarketProblem market(base, make_requests(1, 0.0, 5.0), {1.0, 1.0});
    const auto result = run_market(market, MechanismKind::kPostedCost);
    EXPECT_FALSE(result.outcomes[0].served);
    EXPECT_EQ(result.counters.rejected_budget, 1u);
    EXPECT_EQ(result.counters.rejected_deadline, 0u);
  }
  // Budget admits machine 0, but no machine meets the deadline.
  {
    const MarketProblem market(base, make_requests(1, 4.0, 15.0), {1.0, 1.0});
    const auto result = run_market(market, MechanismKind::kPostedCost);
    EXPECT_FALSE(result.outcomes[0].served);
    EXPECT_EQ(result.counters.rejected_budget, 0u);
    EXPECT_EQ(result.counters.rejected_deadline, 1u);
  }
}

TEST(Market, TrustUnawarePostedPricingCarriesMeteringRisk) {
  // Trust-unaware: decisions on bare EEC (10), metered with 50% blanket
  // security (15).  Budget 12 and deadline 12 both look satisfiable at
  // decision time and both are blown at metering time.
  const auto base =
      make_problem({{10.0}}, sched::trust_unaware_policy());
  const auto requests = make_requests(1, /*deadline=*/12.0, /*budget=*/12.0);
  const MarketProblem market(base, requests, {1.0});
  const auto result = run_market(market, MechanismKind::kPostedCost);
  ASSERT_TRUE(result.outcomes[0].served);
  EXPECT_DOUBLE_EQ(result.outcomes[0].spend, 15.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion, 15.0);
  EXPECT_EQ(result.counters.budget_overruns, 1u);
  EXPECT_EQ(result.counters.deadline_misses, 1u);
}

TEST(Market, AuctionChargesTheSecondLowestAsk) {
  const auto base = make_problem({{2.0, 3.0, 5.0}});
  const auto requests = make_requests(1, 0.0, 0.0, /*valuation=*/10.0);
  const MarketProblem market(base, requests, {1.0, 1.0, 1.0});
  const auto result = run_market(market, MechanismKind::kAuction);
  ASSERT_TRUE(result.outcomes[0].served);
  EXPECT_EQ(result.outcomes[0].machine, 0u);
  EXPECT_DOUBLE_EQ(result.outcomes[0].spend, 3.0);  // Vickrey
  EXPECT_DOUBLE_EQ(result.welfare, 7.0);
}

TEST(Market, AuctionClearingIsCappedByTheBudgetReserve) {
  // Second-lowest ask (8) exceeds the budget (6): the clearing price
  // clamps to the reserve, so auction buyers never overrun.
  const auto base = make_problem({{5.0, 8.0}});
  const MarketProblem market(base, make_requests(1, 0.0, 6.0), {1.0, 1.0});
  const auto result = run_market(market, MechanismKind::kAuction);
  ASSERT_TRUE(result.outcomes[0].served);
  EXPECT_DOUBLE_EQ(result.outcomes[0].spend, 6.0);
  EXPECT_EQ(result.counters.budget_overruns, 0u);
}

TEST(Market, SoleBidderCollectsReserveOrOwnAsk) {
  // Machine 1 is priced out by the budget, leaving a sole bidder, which
  // collects the buyer's full budget as the reserve price.
  const auto base = make_problem({{5.0, 50.0}});
  {
    const MarketProblem market(base, make_requests(1, 0.0, 40.0), {1.0, 1.0});
    const auto result = run_market(market, MechanismKind::kAuction);
    ASSERT_TRUE(result.outcomes[0].served);
    EXPECT_EQ(result.outcomes[0].machine, 0u);
    EXPECT_DOUBLE_EQ(result.outcomes[0].spend, 40.0);
  }
  // With no budget at all a sole bidder can only charge its own ask.
  {
    const auto solo = make_problem({{5.0}});
    const MarketProblem market(solo, make_requests(1), {1.0});
    const auto result = run_market(market, MechanismKind::kAuction);
    EXPECT_DOUBLE_EQ(result.outcomes[0].spend, 5.0);
  }
}

TEST(Market, RequestsQueueInArrivalOrder) {
  // One machine, two requests: the later arrival waits for the earlier.
  const auto base = make_problem({{5.0}, {5.0}},
                                 sched::trust_aware_policy(), {0.0, 1.0});
  const MarketProblem market(base, make_requests(2), {1.0});
  const auto result = run_market(market, MechanismKind::kPostedCost);
  EXPECT_DOUBLE_EQ(result.outcomes[0].completion, 5.0);
  EXPECT_DOUBLE_EQ(result.outcomes[1].completion, 10.0);
}

// ----------------------------------------------------------- QoS draws

TEST(Market, QoSTermsAnchorToTheCheapestMachine) {
  EconomyConfig config;
  config.deadline_slack_lo = config.deadline_slack_hi = 10.0;
  config.budget_factor_lo = config.budget_factor_hi = 2.0;
  config.valuation_markup_lo = config.valuation_markup_hi = 1.25;
  sched::CostMatrix eec(1, 2);
  eec.at(0, 0) = 2.0;  // 2s at rate 3 = G$6
  eec.at(0, 1) = 4.0;  // 4s at rate 1 = G$4 (cheapest in money)
  std::vector<grid::Request> requests(1);
  requests[0].arrival_time = 3.0;
  Rng rng(1);
  draw_qos_terms(requests, eec, {3.0, 1.0}, config, rng);
  EXPECT_DOUBLE_EQ(requests[0].deadline, 3.0 + 10.0 * 2.0);  // best EEC
  EXPECT_DOUBLE_EQ(requests[0].budget, 2.0 * 4.0);  // cheapest posted cost
  EXPECT_DOUBLE_EQ(requests[0].valuation, 1.25 * 8.0);
  EXPECT_TRUE(requests[0].has_deadline());
  EXPECT_TRUE(requests[0].has_budget());
}

TEST(Market, QoSDrawValidatesShapesAndIsDeterministic) {
  EconomyConfig config;
  sched::CostMatrix eec(2, 2);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t m = 0; m < 2; ++m) {
      eec.at(r, m) = 1.0 + static_cast<double>(r + m);
    }
  }
  auto requests = make_requests(2);
  Rng rng_bad(1);
  EXPECT_THROW(draw_qos_terms(requests, eec, {1.0}, config, rng_bad),
               PreconditionError);
  auto a = make_requests(2);
  auto b = make_requests(2);
  Rng rng_a(9);
  Rng rng_b(9);
  draw_qos_terms(a, eec, {1.0, 1.0}, config, rng_a);
  draw_qos_terms(b, eec, {1.0, 1.0}, config, rng_b);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(a[r].deadline, b[r].deadline);
    EXPECT_EQ(a[r].budget, b[r].budget);
    EXPECT_EQ(a[r].valuation, b[r].valuation);
  }
}

// ------------------------------------------------------ market campaigns

sim::Scenario market_scenario(const std::string& pricing,
                              const std::string& mechanism) {
  EconomyConfig economy;
  economy.pricing = pricing;
  economy.mechanism = mechanism;
  return sim::ScenarioBuilder()
      .machines(4)
      .resource_domains(4, 4)
      .client_domains(2, 2)
      .heuristic("mct")
      .inconsistent()
      .with_economy(economy)
      .build();
}

TEST(MarketCampaign, RequiresAnEnabledEconomy) {
  const sim::Scenario scenario =
      sim::ScenarioBuilder().tasks(4).heuristic("mct").build();
  ASSERT_FALSE(scenario.economy.enabled);
  EXPECT_THROW((void)run_market_campaign(scenario, MarketRunConfig{}, 1),
               PreconditionError);
}

TEST(MarketCampaign, IsDeterministicAndAccountsForEveryRequest) {
  const sim::Scenario scenario = market_scenario("trust", "auction");
  MarketRunConfig config;
  config.rounds = 4;
  config.tasks_per_round = 8;
  const MarketCampaignResult first = run_market_campaign(scenario, config, 5);
  const MarketCampaignResult again = run_market_campaign(scenario, config, 5);
  EXPECT_EQ(first.report().to_json(), again.report().to_json());

  ASSERT_EQ(first.rounds.size(), 4u);
  const std::uint64_t offered = 4 * 8;
  EXPECT_EQ(first.counters.served + first.counters.rejected_budget +
                first.counters.rejected_deadline,
            offered);
  EXPECT_GE(first.served_fraction, 0.0);
  EXPECT_LE(first.served_fraction, 1.0);
  EXPECT_GT(first.steady_price_index, 0.0);
  EXPECT_GT(first.transactions, 0u);
  EXPECT_EQ(first.pricing, "trust");
  EXPECT_EQ(first.mechanism, "auction");
  // Auction clearing prices are contracts: no budget overruns, ever.
  EXPECT_EQ(first.counters.budget_overruns, 0u);
}

TEST(MarketCampaign, ReportCarriesEconKeys) {
  const sim::Scenario scenario = market_scenario("commodity", "posted-cost");
  MarketRunConfig config;
  config.rounds = 3;
  config.tasks_per_round = 6;
  const obs::RunReport report =
      run_market_campaign(scenario, config, 11).report();
  for (const char* key :
       {"econ.served", "econ.rejected_budget", "econ.rejected_deadline",
        "econ.budget_overruns", "econ.deadline_misses", "served_fraction",
        "steady_price_index", "steady_welfare", "transactions"}) {
    EXPECT_TRUE(report.has(key)) << key;
  }
}

TEST(MarketCampaign, CatalogRegistersTheMarketSpecs) {
  for (const char* name : {"market_tournament", "smoke_econ", "deadlines"}) {
    EXPECT_NE(lab::find_spec(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace gridtrust::econ
