// Tests for trust-state persistence (table and engine round-trips).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trust/serialization.hpp"

namespace gridtrust::trust {
namespace {

TrustLevelTable random_table(std::size_t cd, std::size_t rd, std::size_t act,
                             std::uint64_t seed) {
  TrustLevelTable table(cd, rd, act);
  Rng rng(seed);
  table.randomize(rng);
  return table;
}

TEST(TableSerialization, RoundTripPreservesEveryEntry) {
  const TrustLevelTable original = random_table(3, 4, 8, 1);
  const TrustLevelTable restored =
      table_from_string(table_to_string(original));
  ASSERT_EQ(restored.client_domains(), 3u);
  ASSERT_EQ(restored.resource_domains(), 4u);
  ASSERT_EQ(restored.activities(), 8u);
  for (std::size_t cd = 0; cd < 3; ++cd) {
    for (std::size_t rd = 0; rd < 4; ++rd) {
      for (std::size_t act = 0; act < 8; ++act) {
        EXPECT_EQ(restored.get(cd, rd, act), original.get(cd, rd, act));
      }
    }
  }
}

TEST(TableSerialization, MinimalTable) {
  TrustLevelTable table(1, 1, 1);
  table.set(0, 0, 0, TrustLevel::kD);
  const TrustLevelTable restored = table_from_string(table_to_string(table));
  EXPECT_EQ(restored.get(0, 0, 0), TrustLevel::kD);
}

TEST(TableSerialization, FormatIsHumanReadable) {
  const std::string text = table_to_string(random_table(1, 2, 3, 2));
  EXPECT_EQ(text.rfind("gridtrust-trust-table v1", 0), 0u);
  EXPECT_NE(text.find("dims 1 2 3"), std::string::npos);
  EXPECT_NE(text.find("row 0 0 "), std::string::npos);
  EXPECT_NE(text.find("row 0 1 "), std::string::npos);
}

TEST(TableSerialization, ToleratesCommentsAndBlankLines) {
  const TrustLevelTable original = random_table(2, 2, 2, 3);
  std::string text = table_to_string(original);
  text.insert(text.find('\n') + 1, "# a comment\n\n");
  const TrustLevelTable restored = table_from_string(text);
  EXPECT_EQ(restored.get(1, 1, 1), original.get(1, 1, 1));
}

TEST(TableSerialization, RejectsCorruptInput) {
  EXPECT_THROW(table_from_string(""), PreconditionError);
  EXPECT_THROW(table_from_string("wrong header\n"), PreconditionError);
  EXPECT_THROW(table_from_string("gridtrust-trust-table v1\ndims 1 1\n"),
               PreconditionError);
  EXPECT_THROW(
      table_from_string("gridtrust-trust-table v1\ndims 1 1 2\nrow 0 0 A\n"),
      PreconditionError);  // wrong level count
  EXPECT_THROW(
      table_from_string("gridtrust-trust-table v1\ndims 1 1 1\nrow 0 0 F\n"),
      PreconditionError);  // F is not an offered level
  EXPECT_THROW(
      table_from_string("gridtrust-trust-table v1\ndims 1 1 1\nrow 0 5 A\n"),
      PreconditionError);  // rd out of range
  EXPECT_THROW(
      table_from_string("gridtrust-trust-table v1\ndims 1 1 1\n"),
      PreconditionError);  // missing rows
}

TEST(EngineSerialization, RoundTripPreservesRecordsExactly) {
  TrustEngine original({}, 6, 3);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<EntityId>(rng.index(6));
    auto b = static_cast<EntityId>(rng.index(6));
    if (a == b) b = static_cast<EntityId>((b + 1) % 6);
    original.record_transaction({a, b,
                                 static_cast<ContextId>(rng.index(3)),
                                 static_cast<double>(i),
                                 rng.uniform(1.0, 6.0)});
  }

  std::ostringstream os;
  save_engine(original, os);
  TrustEngine restored({}, 6, 3);
  std::istringstream is(os.str());
  load_engine(restored, is);

  EXPECT_EQ(restored.transaction_count(), original.transaction_count());
  const auto a_records = original.export_records();
  const auto b_records = restored.export_records();
  ASSERT_EQ(a_records.size(), b_records.size());
  for (std::size_t i = 0; i < a_records.size(); ++i) {
    EXPECT_EQ(a_records[i].truster, b_records[i].truster);
    EXPECT_EQ(a_records[i].trustee, b_records[i].trustee);
    EXPECT_EQ(a_records[i].context, b_records[i].context);
    // Bit-exact round trip (precision 17).
    EXPECT_EQ(a_records[i].record.level, b_records[i].record.level);
    EXPECT_EQ(a_records[i].record.last_time, b_records[i].record.last_time);
    EXPECT_EQ(a_records[i].record.count, b_records[i].record.count);
  }
  // The restored engine answers queries identically.
  EXPECT_EQ(original.eventual_trust(0, 1, 0, 1000.0),
            restored.eventual_trust(0, 1, 0, 1000.0));
}

TEST(EngineSerialization, LoadIntoLargerEngineWorks) {
  TrustEngine small({}, 3, 1);
  small.record_transaction({0, 1, 0, 1.0, 4.0});
  std::ostringstream os;
  save_engine(small, os);
  TrustEngine big({}, 10, 4);
  std::istringstream is(os.str());
  load_engine(big, is);
  EXPECT_TRUE(big.direct_record(0, 1, 0).has_value());
}

TEST(EngineSerialization, LoadIntoSmallerEngineFails) {
  TrustEngine original({}, 6, 2);
  original.record_transaction({0, 5, 1, 1.0, 4.0});
  std::ostringstream os;
  save_engine(original, os);
  TrustEngine tiny({}, 2, 1);
  std::istringstream is(os.str());
  EXPECT_THROW(load_engine(tiny, is), PreconditionError);
}

TEST(EngineSerialization, RefusesToOverwriteExistingRecords) {
  TrustEngine original({}, 3, 1);
  original.record_transaction({0, 1, 0, 1.0, 4.0});
  std::ostringstream os;
  save_engine(original, os);
  TrustEngine target({}, 3, 1);
  target.record_transaction({0, 1, 0, 0.5, 2.0});
  std::istringstream is(os.str());
  EXPECT_THROW(load_engine(target, is), PreconditionError);
}

TEST(EngineSerialization, RejectsCorruptRecords) {
  TrustEngine engine({}, 3, 1);
  const std::string header = "gridtrust-trust-engine v1\ndims 3 1\n";
  {
    std::istringstream is(header + "rec 0 0 0 4.0 1.0 2\n");  // self trust
    EXPECT_THROW(load_engine(engine, is), PreconditionError);
  }
  {
    std::istringstream is(header + "rec 0 1 0 9.0 1.0 2\n");  // level > 6
    EXPECT_THROW(load_engine(engine, is), PreconditionError);
  }
  {
    std::istringstream is(header + "rec 0 1 0 4.0 1.0 0\n");  // zero count
    EXPECT_THROW(load_engine(engine, is), PreconditionError);
  }
  {
    std::istringstream is(header + "bogus line\n");
    EXPECT_THROW(load_engine(engine, is), PreconditionError);
  }
}

TEST(EngineExport, ImportRecordValidation) {
  TrustEngine engine({}, 3, 1);
  TrustEngine::Entry entry;
  entry.truster = 0;
  entry.trustee = 9;  // out of range
  entry.record.count = 1;
  entry.record.level = 3.0;
  EXPECT_THROW(engine.import_record(entry), PreconditionError);
  entry.trustee = 1;
  entry.record.last_time = -1.0;
  EXPECT_THROW(engine.import_record(entry), PreconditionError);
  entry.record.last_time = 0.0;
  engine.import_record(entry);
  EXPECT_EQ(engine.transaction_count(), 1u);
}

}  // namespace
}  // namespace gridtrust::trust
