// Tests for the Beta reputation comparison engine.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trust/beta_reputation.hpp"
#include "trust/trust_engine.hpp"

namespace gridtrust::trust {
namespace {

TEST(BetaReputation, StrangerGetsNeutralPrior) {
  BetaReputationEngine engine({}, 4, 1);
  EXPECT_NEAR(engine.reputation_score(1, 0, 0.0), 3.5, 1e-12);
  EXPECT_FALSE(engine.evidence(1, 0, 0.0).has_value());
}

TEST(BetaReputation, EvidenceMapsScoresLinearly) {
  BetaReputationEngine engine({}, 4, 1);
  engine.record_transaction({0, 1, 0, 0.0, 6.0});  // fully positive
  auto ev = engine.evidence(1, 0, 0.0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_NEAR(ev->first, 1.0, 1e-12);
  EXPECT_NEAR(ev->second, 0.0, 1e-12);
  engine.record_transaction({2, 1, 0, 1.0, 1.0});  // fully negative
  ev = engine.evidence(1, 0, 1.0);
  EXPECT_NEAR(ev->first, 1.0, 1e-12);
  EXPECT_NEAR(ev->second, 1.0, 1e-12);
  // Balanced evidence -> the midpoint.
  EXPECT_NEAR(engine.reputation_score(1, 0, 1.0), 3.5, 1e-12);
}

TEST(BetaReputation, ConvergesToConductWithEvidence) {
  BetaReputationEngine engine({}, 6, 1);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto z = static_cast<EntityId>(1 + rng.index(5));
    engine.record_transaction(
        {z, 0, 0, static_cast<double>(i), 5.0});  // consistent conduct 5.0
  }
  EXPECT_NEAR(engine.reputation_score(0, 0, 500.0), 5.0, 0.1);
  EXPECT_EQ(engine.offered_level(0, 0, 500.0), TrustLevel::kE);
}

TEST(BetaReputation, ForgettingDiscountsOldEvidence) {
  BetaReputationConfig cfg;
  cfg.evidence_half_life = 10.0;
  BetaReputationEngine engine(cfg, 3, 1);
  // Strongly positive history...
  for (int i = 0; i < 20; ++i) {
    engine.record_transaction({1, 0, 0, static_cast<double>(i), 6.0});
  }
  const double fresh = engine.reputation_score(0, 0, 20.0);
  // ...mostly forgotten after ten half-lives.
  const double stale = engine.reputation_score(0, 0, 120.0);
  EXPECT_GT(fresh, 5.5);
  EXPECT_LT(stale, fresh);
  // Forgetting drifts toward the neutral prior, never below it for a
  // purely positive history.
  EXPECT_GE(stale, 3.5 - 1e-9);
}

TEST(BetaReputation, ContextsAreIsolated) {
  BetaReputationEngine engine({}, 3, 2);
  engine.record_transaction({0, 1, 0, 0.0, 6.0});
  EXPECT_GT(engine.reputation_score(1, 0, 0.0), 4.0);
  EXPECT_NEAR(engine.reputation_score(1, 1, 0.0), 3.5, 1e-12);
}

TEST(BetaReputation, Validation) {
  BetaReputationEngine engine({}, 3, 1);
  EXPECT_THROW(engine.record_transaction({0, 0, 0, 0.0, 3.0}),
               PreconditionError);
  EXPECT_THROW(engine.record_transaction({0, 5, 0, 0.0, 3.0}),
               PreconditionError);
  EXPECT_THROW(engine.record_transaction({0, 1, 4, 0.0, 3.0}),
               PreconditionError);
  EXPECT_THROW(engine.record_transaction({0, 1, 0, 0.0, 0.5}),
               PreconditionError);
  engine.record_transaction({0, 1, 0, 5.0, 3.0});
  EXPECT_THROW(engine.record_transaction({0, 1, 0, 1.0, 3.0}),
               PreconditionError);  // time backwards
  EXPECT_THROW(BetaReputationEngine({}, 0, 1), PreconditionError);
}

TEST(BetaVsGamma, CollusionInflatesBetaButNotGamma) {
  // A misbehaving target (true conduct 1.5) with 5 colluders flooding 6.0
  // ratings and 2 honest witnesses reporting the truth.  Beta pools all
  // evidence equally; the paper's Γ discounts allied recommenders via R.
  constexpr double kTruth = 1.5;

  BetaReputationEngine beta({}, 10, 1);
  TrustEngineConfig cfg;
  cfg.alliance_discount = 0.1;
  TrustEngine gamma(cfg, 10, 1);
  const EntityId target = 1;
  double clock = 0.0;
  for (EntityId z : {2u, 3u, 4u, 5u, 6u}) {  // colluders
    gamma.alliances().ally(z, target);
    for (int i = 0; i < 4; ++i) {
      clock += 1.0;
      beta.record_transaction({z, target, 0, clock, 6.0});
      gamma.record_transaction({z, target, 0, clock, 6.0});
    }
  }
  for (EntityId z : {7u, 8u}) {  // honest witnesses
    for (int i = 0; i < 4; ++i) {
      clock += 1.0;
      beta.record_transaction({z, target, 0, clock, kTruth});
      gamma.record_transaction({z, target, 0, clock, kTruth});
    }
  }
  const double beta_view = beta.reputation_score(target, 0, clock);
  const double gamma_view = gamma.eventual_trust(0, target, 0, clock);
  // Beta is whitewashed well above the truth; Γ stays near it.
  EXPECT_GT(beta_view, kTruth + 1.5);
  EXPECT_LT(gamma_view, kTruth + 1.0);
  EXPECT_LT(gamma_view, beta_view - 1.5);
}

TEST(BetaVsGamma, AgreeWithoutCollusion) {
  // With honest unanimous witnesses both models land on the conduct.
  BetaReputationEngine beta({}, 6, 1);
  TrustEngine gamma({}, 6, 1);
  double clock = 0.0;
  for (EntityId z : {1u, 2u, 3u, 4u}) {
    for (int i = 0; i < 6; ++i) {
      clock += 1.0;
      beta.record_transaction({z, 0, 0, clock, 5.0});
      gamma.record_transaction({z, 0, 0, clock, 5.0});
    }
  }
  EXPECT_NEAR(beta.reputation_score(0, 0, clock), 5.0, 0.4);
  EXPECT_NEAR(gamma.eventual_trust(5, 0, 0, clock), 5.0, 0.4);
}

}  // namespace
}  // namespace gridtrust::trust
